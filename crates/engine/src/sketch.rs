//! Mergeable per-shard sample sketches for the approximate query path.
//!
//! Every shard maintains a uniform reservoir sample of its resident data
//! (Vitter's Algorithm R, deterministic in the engine seed). A quantile
//! query carrying a rank-error tolerance is answered from the union of the
//! `p` reservoirs — each sample weighted by its shard's population — without
//! touching the full data. Uniform sampling gives the estimate a standard
//! rank error of `n·√(q(1−q)/m)` for `m` total samples, which is what the
//! engine's conservative support bound (see [`support_bound`]) is derived
//! from.

use cgselect_runtime::Key;
use cgselect_seqsel::KernelRng;

/// A uniform reservoir sample of one shard's resident elements.
///
/// Mergeable across shards: the union of per-shard reservoirs, with each
/// sample carrying weight `nᵢ/mᵢ`, is an unbiased weighted sample of the
/// global multiset.
#[derive(Clone, Debug)]
pub struct ReservoirSketch<T> {
    capacity: usize,
    seen: u64,
    samples: Vec<T>,
    rng: KernelRng,
}

impl<T: Key> ReservoirSketch<T> {
    /// An empty sketch holding at most `capacity` samples; the RNG stream is
    /// derived from `seed` (engines derive per-shard seeds, so shards sample
    /// independently but reproducibly).
    pub fn new(capacity: usize, seed: u64) -> Self {
        ReservoirSketch {
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity.min(1024)),
            rng: KernelRng::new(seed ^ 0x5EE7_C4A1_0000_0001),
        }
    }

    /// Offers one newly ingested element (Algorithm R).
    pub fn offer(&mut self, x: T) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else if self.capacity > 0 {
            let j = self.rng.below(self.seen);
            if (j as usize) < self.capacity {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Rebuilds the sketch from the shard's current data — used after
    /// deletes and rebalances, which invalidate an incremental reservoir.
    pub fn rebuild(&mut self, data: &[T]) {
        self.samples.clear();
        self.seen = 0;
        for &x in data {
            self.offer(x);
        }
    }

    /// The current samples (unordered).
    pub fn samples(&self) -> &[T] {
        &self.samples
    }

    /// How many elements this sketch has represented (the shard population).
    pub fn population(&self) -> u64 {
        self.seen
    }

    /// True while every offered element is still in the reservoir (the
    /// sketch is lossless below its capacity).
    pub fn is_exact(&self) -> bool {
        self.seen as usize <= self.capacity
    }

    /// Captures the full sketch state for shard migration:
    /// `(capacity, seen, samples, rng_state)`. [`ReservoirSketch::restore`]
    /// on another host continues the exact sample stream, so a migrated
    /// shard sketches identically to one that never moved.
    pub fn snapshot(&self) -> (usize, u64, Vec<T>, u64) {
        (self.capacity, self.seen, self.samples.clone(), self.rng.state())
    }

    /// Rebuilds a sketch mid-stream from a [`ReservoirSketch::snapshot`].
    pub fn restore(capacity: usize, seen: u64, samples: Vec<T>, rng_state: u64) -> Self {
        ReservoirSketch { capacity, seen, samples, rng: KernelRng::from_state(rng_state) }
    }
}

/// The smallest fractional rank-error tolerance the merged sketches can
/// honor, given per-shard `(samples, population)` sizes: `0` when every
/// shard is below capacity (the union is lossless), otherwise
/// `2/√m` for `m` total samples — about four standard errors of the
/// uniform-sampling rank estimate at the median, the worst case.
pub fn support_bound(shards: &[(usize, u64)]) -> f64 {
    let lossless = shards.iter().all(|&(m, n)| m as u64 >= n);
    if lossless {
        return 0.0;
    }
    let m_total: usize = shards.iter().map(|&(m, _)| m).sum();
    if m_total == 0 {
        return f64::INFINITY;
    }
    2.0 / (m_total as f64).sqrt()
}

/// Estimates the element of 0-based global rank `target` from per-shard
/// `(samples, population)` pairs, weighting each sample by `nᵢ/mᵢ`.
///
/// # Panics
/// Panics if every shard is empty.
pub fn estimate_rank<T: Key>(shards: &[(Vec<T>, u64)], target: u64) -> T {
    let mut weighted: Vec<(T, f64)> = Vec::new();
    for (samples, n) in shards {
        if samples.is_empty() {
            continue;
        }
        let w = *n as f64 / samples.len() as f64;
        weighted.extend(samples.iter().map(|&x| (x, w)));
    }
    assert!(!weighted.is_empty(), "rank estimate over empty sketches");
    weighted.sort_unstable_by_key(|&(x, _)| x);
    // The element whose cumulative weight first covers the target rank
    // (+1: ranks are 0-based, cumulative weights are counts).
    let target = target as f64 + 1.0;
    let mut cum = 0.0;
    for &(x, w) in &weighted {
        cum += w;
        if cum >= target {
            return x;
        }
    }
    weighted.last().expect("nonempty").0
}

/// Estimates the number of resident elements admitted by the probe
/// `(value, inclusive)` (`x < value`, or `x ≤ value` when inclusive) from
/// per-shard `(samples, population)` pairs — the *inverse* direction of
/// [`estimate_rank`], weighting each admitted sample by `nᵢ/mᵢ`. Exact
/// whenever every shard's sketch is lossless.
pub fn estimate_rank_of<T: Key>(shards: &[(Vec<T>, u64)], value: T, inclusive: bool) -> u64 {
    let mut estimate = 0.0f64;
    for (samples, n) in shards {
        if samples.is_empty() {
            continue;
        }
        let weight = *n as f64 / samples.len() as f64;
        let admitted =
            samples.iter().filter(|&&x| if inclusive { x <= value } else { x < value }).count();
        estimate += admitted as f64 * weight;
    }
    estimate.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_capacity_is_lossless() {
        let mut s = ReservoirSketch::new(16, 7);
        for x in 0..10u64 {
            s.offer(x);
        }
        assert!(s.is_exact());
        assert_eq!(s.population(), 10);
        let mut got = s.samples().to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn above_capacity_keeps_capacity_samples() {
        let mut s = ReservoirSketch::new(8, 3);
        for x in 0..1000u64 {
            s.offer(x);
        }
        assert!(!s.is_exact());
        assert_eq!(s.samples().len(), 8);
        assert_eq!(s.population(), 1000);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Offer 0..2000 into a 100-slot reservoir many times; the mean of
        // the kept samples must approach the stream mean.
        let mut grand_total = 0.0;
        let reps = 40;
        for seed in 0..reps {
            let mut s = ReservoirSketch::new(100, seed);
            for x in 0..2000u64 {
                s.offer(x);
            }
            grand_total += s.samples().iter().sum::<u64>() as f64 / s.samples().len() as f64;
        }
        let mean = grand_total / reps as f64;
        assert!((mean - 999.5).abs() < 60.0, "reservoir mean {mean:.1} far from stream mean 999.5");
    }

    #[test]
    fn snapshot_restore_continues_the_exact_stream() {
        // A migrated sketch must be indistinguishable from one that never
        // moved: same samples after the same continued stream.
        let mut original = ReservoirSketch::new(32, 99);
        let mut migrated: Option<ReservoirSketch<u64>> = None;
        for x in 0..5000u64 {
            if x == 2500 {
                let (cap, seen, samples, rng_state) = original.snapshot();
                migrated = Some(ReservoirSketch::restore(cap, seen, samples, rng_state));
            }
            original.offer(x);
            if let Some(m) = migrated.as_mut() {
                m.offer(x);
            }
        }
        let migrated = migrated.unwrap();
        assert_eq!(migrated.population(), original.population());
        assert_eq!(migrated.samples(), original.samples());
    }

    #[test]
    fn estimate_is_exact_on_lossless_sketches() {
        // Two shards, both below capacity: estimates must equal the oracle.
        let a: Vec<u64> = (0..50).map(|i| i * 2).collect(); // evens
        let b: Vec<u64> = (0..50).map(|i| i * 2 + 1).collect(); // odds
        let shards = vec![(a.clone(), 50u64), (b.clone(), 50u64)];
        let mut all: Vec<u64> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        for target in [0u64, 1, 49, 50, 98, 99] {
            assert_eq!(estimate_rank(&shards, target), all[target as usize], "rank {target}");
        }
    }

    #[test]
    fn estimate_error_within_bound_on_sampled_shards() {
        // 4 shards of 50k elements each, 1024 samples per shard.
        let per = 50_000u64;
        let shards: Vec<(Vec<u64>, u64)> = (0..4)
            .map(|r| {
                let mut s = ReservoirSketch::new(1024, r);
                for i in 0..per {
                    s.offer(i * 4 + r); // global multiset = 0..200k
                }
                (s.samples().to_vec(), s.population())
            })
            .collect();
        let n = 4 * per;
        let sizes: Vec<(usize, u64)> = shards.iter().map(|(s, n)| (s.len(), *n)).collect();
        let bound = support_bound(&sizes);
        assert!(bound > 0.0 && bound < 0.05, "bound {bound}");
        for q in [0.1, 0.5, 0.9] {
            let target = (q * (n - 1) as f64).round() as u64;
            let est = estimate_rank(&shards, target);
            // The data is 0..n, so the value IS its rank.
            let err = est.abs_diff(target) as f64 / n as f64;
            assert!(
                err <= bound,
                "q={q}: estimate {est} vs target {target}, err {err:.5} > bound {bound:.5}"
            );
        }
    }

    #[test]
    fn rank_of_estimate_is_exact_on_lossless_sketches() {
        let a: Vec<u64> = (0..50).map(|i| i * 2).collect(); // evens
        let b: Vec<u64> = (0..50).map(|i| i * 2 + 1).collect(); // odds
        let shards = vec![(a, 50u64), (b, 50u64)];
        // 0..100 resident: rank-of(v) strict = v, inclusive = v + 1.
        for v in [0u64, 1, 37, 99] {
            assert_eq!(estimate_rank_of(&shards, v, false), v, "strict rank-of {v}");
            assert_eq!(estimate_rank_of(&shards, v, true), v + 1, "inclusive rank-of {v}");
        }
        assert_eq!(estimate_rank_of(&shards, 1000, false), 100);
    }

    #[test]
    fn rank_of_estimate_error_within_bound_on_sampled_shards() {
        let per = 50_000u64;
        let shards: Vec<(Vec<u64>, u64)> = (0..4)
            .map(|r| {
                let mut s = ReservoirSketch::new(1024, r);
                for i in 0..per {
                    s.offer(i * 4 + r); // global multiset = 0..200k
                }
                (s.samples().to_vec(), s.population())
            })
            .collect();
        let n = 4 * per;
        let sizes: Vec<(usize, u64)> = shards.iter().map(|(s, n)| (s.len(), *n)).collect();
        let bound = support_bound(&sizes);
        for v in [20_000u64, 100_000, 180_000] {
            // The data is 0..n, so the strict rank of v IS v.
            let est = estimate_rank_of(&shards, v, false);
            let err = est.abs_diff(v) as f64 / n as f64;
            assert!(err <= bound, "v={v}: estimate {est}, err {err:.5} > bound {bound:.5}");
        }
    }

    #[test]
    fn support_bound_semantics() {
        assert_eq!(support_bound(&[(100, 50), (100, 100)]), 0.0);
        let b = support_bound(&[(100, 1000), (100, 50)]);
        assert!((b - 2.0 / (200.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(support_bound(&[(0, 10)]), f64::INFINITY);
    }
}
