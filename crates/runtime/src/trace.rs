//! Event tracing: a per-processor log of communication and phase events
//! with virtual timestamps, for debugging SPMD programs and inspecting
//! where a parallel algorithm's time goes.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! per processor with [`crate::Proc::trace_enable`]. Collect each
//! processor's [`Trace`] and render a combined timeline with
//! [`render_timeline`], or fold the phase structure into per-phase totals
//! (virtual time + collective ops) with [`aggregate_phases`] /
//! [`render_phase_summary`].
//!
//! # Engine-level usage
//!
//! Most callers never write raw SPMD closures: the phases they care about
//! are the ones the *engine* opens around its batch-execution stages
//! (`"probes"`, `"exact"`, `"sketch"`) when observability is on — see the
//! engine crate's `obs` module, whose per-phase spans are built from
//! exactly the [`crate::Proc::phase_begin`] / [`crate::Proc::phase_end`]
//! brackets recorded here. A rendered phase summary of one engine batch
//! looks like:
//!
//! ```text
//! phase        time(µs)  collective_ops
//! probes          112.4               8
//! exact          2381.0             168
//! sketch           95.1              16
//! ```
//!
//! The raw-closure route remains available for custom SPMD programs:
//! enable tracing inside the closure, return `proc.take_trace()`, and feed
//! the collected traces to the functions below (see the tests for
//! end-to-end examples).

/// One traced event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the event completed (seconds).
    pub at: f64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The kinds of events the runtime records.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A point-to-point send finished (local completion).
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Modeled payload bytes.
        bytes: u64,
    },
    /// A receive completed.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
        /// Modeled payload bytes.
        bytes: u64,
    },
    /// A named phase opened.
    PhaseBegin(&'static str),
    /// A named phase closed.
    PhaseEnd(&'static str),
    /// A local computation charge.
    Compute {
        /// Elementary operations charged.
        ops: u64,
    },
    /// This processor started a collective operation (barrier, broadcast,
    /// reduce, scan, gather/scatter variant, all-to-all, or a `fresh_tag`
    /// draw) — the trace-level twin of `CommStats::collective_ops`.
    Collective,
}

/// A processor's event log.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Rank that produced the log.
    pub rank: usize,
    /// Events in the order they occurred.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events of a given coarse class, for assertions in tests.
    pub fn count_sends(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TraceEventKind::Send { .. })).count()
    }

    /// Number of receive events.
    pub fn count_recvs(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TraceEventKind::Recv { .. })).count()
    }

    /// Total bytes sent according to the log.
    pub fn bytes_sent(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Send { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum()
    }
}

/// Renders the traces of all processors as a merged, time-ordered textual
/// timeline (one line per event), suitable for eyeballing communication
/// structure:
///
/// ```text
///     12.3µs  P0 -> P2  tag=0x8000…  16B
///     14.1µs  P2 <- P0  tag=0x8000…  16B
/// ```
pub fn render_timeline(traces: &[Trace]) -> String {
    let mut lines: Vec<(f64, String)> = Vec::new();
    for t in traces {
        for e in &t.events {
            let desc = match &e.kind {
                TraceEventKind::Send { to, tag, bytes } => {
                    format!("P{} -> P{to}  tag={tag:#x}  {bytes}B", t.rank)
                }
                TraceEventKind::Recv { from, tag, bytes } => {
                    format!("P{} <- P{from}  tag={tag:#x}  {bytes}B", t.rank)
                }
                TraceEventKind::PhaseBegin(l) => format!("P{} phase {l} {{", t.rank),
                TraceEventKind::PhaseEnd(l) => format!("P{} }} phase {l}", t.rank),
                TraceEventKind::Compute { ops } => format!("P{} compute {ops} ops", t.rank),
                TraceEventKind::Collective => format!("P{} collective", t.rank),
            };
            lines.push((e.at, desc));
        }
    }
    lines.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = String::new();
    for (at, desc) in lines {
        out.push_str(&format!("{:>12.3}µs  {desc}\n", at * 1e6));
    }
    out
}

/// Totals for one named phase, folded over a set of traces by
/// [`aggregate_phases`].
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseAggregate {
    /// Phase label as passed to `Proc::phase_begin`.
    pub label: &'static str,
    /// Inclusive virtual seconds spent inside the phase, summed over every
    /// begin/end bracket in every trace.
    pub time: f64,
    /// Collective operations started while the phase was open, summed over
    /// all traces. Under SPMD discipline every processor starts the same
    /// collectives, so with `p` traces this is `p ×` the per-processor
    /// round count.
    pub collective_ops: u64,
}

/// Folds per-event traces into per-phase totals: inclusive virtual time and
/// collective-op counts for each named phase, in first-seen order.
///
/// Nested phases are inclusive, matching `PhaseTimer`: an inner phase's time
/// and collectives also count toward every enclosing phase. Collectives
/// outside any open phase are dropped (they still show in the raw timeline).
/// Traces recorded without tracing enabled contribute nothing.
pub fn aggregate_phases(traces: &[Trace]) -> Vec<PhaseAggregate> {
    let mut acc: Vec<PhaseAggregate> = Vec::new();
    fn entry<'a>(acc: &'a mut Vec<PhaseAggregate>, label: &'static str) -> &'a mut PhaseAggregate {
        if let Some(i) = acc.iter().position(|a| a.label == label) {
            &mut acc[i]
        } else {
            acc.push(PhaseAggregate { label, time: 0.0, collective_ops: 0 });
            acc.last_mut().expect("just pushed")
        }
    }
    for t in traces {
        let mut open: Vec<(&'static str, f64)> = Vec::new();
        for e in &t.events {
            match e.kind {
                TraceEventKind::PhaseBegin(label) => open.push((label, e.at)),
                TraceEventKind::PhaseEnd(label) => {
                    let (begun, start) = open
                        .pop()
                        .unwrap_or_else(|| panic!("PhaseEnd({label:?}) with no open phase"));
                    assert_eq!(begun, label, "mis-nested phase events in trace");
                    entry(&mut acc, label).time += e.at - start;
                }
                TraceEventKind::Collective => {
                    for &(label, _) in &open {
                        entry(&mut acc, label).collective_ops += 1;
                    }
                }
                _ => {}
            }
        }
    }
    acc
}

/// Renders [`aggregate_phases`] output as an aligned text table — the
/// per-phase companion view to the per-event [`render_timeline`]:
///
/// ```text
/// phase        time(µs)  collective_ops
/// probes          112.4               8
/// exact          2381.0             168
/// ```
pub fn render_phase_summary(traces: &[Trace]) -> String {
    let mut out = String::from("phase        time(µs)  collective_ops\n");
    for a in aggregate_phases(traces) {
        out.push_str(&format!(
            "{:<10} {:>10.1}  {:>14}\n",
            a.label,
            a.time * 1e6,
            a.collective_ops
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, MachineModel};

    #[test]
    fn traces_record_communication() {
        let traces = Machine::with_model(2, MachineModel::cm5())
            .run(|proc| {
                proc.trace_enable();
                if proc.rank() == 0 {
                    proc.send_vec(1, 3, vec![1u8, 2, 3]);
                } else {
                    let _: Vec<u8> = proc.recv_vec(0, 3);
                }
                proc.phase_begin("work");
                proc.charge_ops(10);
                proc.phase_end("work");
                proc.take_trace()
            })
            .unwrap();
        assert_eq!(traces[0].count_sends(), 1);
        assert_eq!(traces[0].bytes_sent(), 3);
        assert_eq!(traces[1].count_recvs(), 1);
        // Phases and compute recorded on both.
        for t in &traces {
            assert!(t.events.iter().any(|e| e.kind == TraceEventKind::PhaseBegin("work")));
            assert!(t.events.iter().any(|e| matches!(e.kind, TraceEventKind::Compute { ops: 10 })));
        }
    }

    #[test]
    fn timeline_renders_in_time_order() {
        let traces = Machine::with_model(3, MachineModel::cm5())
            .run(|proc| {
                proc.trace_enable();
                let v = (proc.rank() == 0).then_some(7u64);
                proc.broadcast(0, v);
                proc.take_trace()
            })
            .unwrap();
        let timeline = render_timeline(&traces);
        assert!(timeline.contains("->"));
        assert!(timeline.contains("<-"));
        // Times are non-decreasing down the page.
        let times: Vec<f64> = timeline
            .lines()
            .map(|l| l.trim().split("µs").next().unwrap().trim().parse::<f64>().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{timeline}");
    }

    #[test]
    fn phase_aggregation_totals_time_and_collectives() {
        let traces = Machine::with_model(4, MachineModel::cm5())
            .run(|proc| {
                proc.trace_enable();
                proc.phase_begin("route");
                let _ = proc.combine(proc.rank() as u64, |a, b| a + b);
                proc.phase_begin("inner");
                proc.barrier();
                proc.phase_end("inner");
                proc.phase_end("route");
                // A collective outside any phase is not attributed.
                proc.barrier();
                proc.phase_begin("refine");
                proc.charge_ops(100);
                proc.phase_end("refine");
                proc.take_trace()
            })
            .unwrap();
        let agg = aggregate_phases(&traces);
        let labels: Vec<&str> = agg.iter().map(|a| a.label).collect();
        assert_eq!(labels, ["route", "inner", "refine"], "first-seen order");
        let get = |l: &str| agg.iter().find(|a| a.label == l).unwrap();
        // Nesting is inclusive: the barrier inside "inner" also counts for
        // "route". combine may itself be built from several collective
        // rounds, so assert relative structure, not a constant.
        assert!(get("route").collective_ops >= get("inner").collective_ops + 4);
        assert_eq!(get("inner").collective_ops % 4, 0, "same count on each of 4 procs");
        assert_eq!(get("refine").collective_ops, 0);
        assert!(get("route").time >= get("inner").time);
        assert!(get("refine").time > 0.0, "compute charge advances the clock");
        let table = render_phase_summary(&traces);
        assert!(table.starts_with("phase"), "{table}");
        for l in ["route", "inner", "refine"] {
            assert!(table.contains(l), "{table}");
        }
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let traces = Machine::new(2)
            .run(|proc| {
                if proc.rank() == 0 {
                    proc.send(1, 1, 5u8);
                } else {
                    let _: u8 = proc.recv(0, 1);
                }
                proc.take_trace()
            })
            .unwrap();
        assert!(traces.iter().all(|t| t.events.is_empty()));
    }
}
