//! Introselect: the standard library's deterministic worst-case-linear
//! selection (median-of-medians fallback), with measured comparisons.

use crate::ops::OpCount;

/// Returns the element of 0-based rank `k` using
/// `slice::select_nth_unstable_by` — a deterministic selection with
/// quickselect-like constants and a median-of-medians fallback that keeps
/// the worst case `O(n)`.
///
/// Comparisons are measured through the comparator; element moves inside
/// the standard library are not observable and are charged as one move per
/// element (a documented under-count; this kernel is used where a *cheap*
/// deterministic selection is appropriate, e.g. building the bucket
/// structure, so the conservative estimate is acceptable).
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn introselect<T: Copy + Ord>(data: &mut [T], k: usize, ops: &mut OpCount) -> T {
    assert!(k < data.len(), "rank {k} out of range for {} elements", data.len());
    let mut cmps = 0u64;
    let (_, &mut v, _) = data.select_nth_unstable_by(k, |a, b| {
        cmps += 1;
        a.cmp(b)
    });
    ops.cmps += cmps;
    ops.moves += data.len() as u64;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::median_of_medians_select;
    use crate::rng::KernelRng;

    fn oracle(mut v: Vec<i64>, k: usize) -> i64 {
        v.sort_unstable();
        v[k]
    }

    #[test]
    fn selects_every_rank_small() {
        let base = vec![4i64, -9, 4, 0, 12, 3, 3, 7];
        for k in 0..base.len() {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            assert_eq!(introselect(&mut v, k, &mut ops), oracle(base.clone(), k), "k={k}");
        }
    }

    #[test]
    fn matches_oracle_large_with_duplicates() {
        let mut rng = KernelRng::new(4);
        let base: Vec<i64> = (0..30_000).map(|_| (rng.next_u64() % 50) as i64).collect();
        for k in [0, 15_000, 29_999] {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            assert_eq!(introselect(&mut v, k, &mut ops), oracle(base.clone(), k));
        }
    }

    #[test]
    fn is_substantially_cheaper_than_classic_bfprt() {
        // This gap is why the bucket structure is built with introselect:
        // both are deterministic and worst-case linear, but the classic
        // groups-of-5 algorithm pays a much larger constant.
        let mut rng = KernelRng::new(6);
        let n = 1 << 16;
        let base: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();

        let mut intro_ops = OpCount::new();
        let mut v = base.clone();
        let a = introselect(&mut v, n / 2, &mut intro_ops);

        let mut bfprt_ops = OpCount::new();
        let mut v = base.clone();
        let b = median_of_medians_select(&mut v, n / 2, &mut bfprt_ops);

        assert_eq!(a, b);
        assert!(
            bfprt_ops.total() > 2 * intro_ops.total(),
            "bfprt={} intro={}",
            bfprt_ops.total(),
            intro_ops.total()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut v = vec![1];
        let mut ops = OpCount::new();
        let _ = introselect(&mut v, 1, &mut ops);
    }
}
