//! Sketches: compact summaries of the resident multiset.
//!
//! Two families live here, with different contracts:
//!
//! * [`EpsSketch`] (`sketch/eps.rs`) — the serving rung. A **deterministic**
//!   mergeable ε-sketch (a Munro–Paterson-style compactor hierarchy) that
//!   answers rank → value and value → rank queries with a *provable*
//!   absolute rank-error bound it reports itself
//!   ([`EpsSketch::rank_error_bound`] / [`EpsSketch::count_error_bound`]).
//!   The engine keeps one host-global `EpsSketch` fed at ingest and
//!   per-shard sketches that seed index splitters and ride migration
//!   snapshots; `Accuracy::WithinRank` contracts the bound can honor are
//!   served host-side at **zero collectives**.
//! * [`ReservoirSketch`] (`sketch/reservoir.rs`) — a uniform reservoir
//!   sample (Vitter's Algorithm R), retained for the metrics registry's
//!   self-served latency percentiles, where a probabilistic estimate is
//!   the right tool and a deterministic bound is not needed.
//!
//! The probabilistic *serving* entry points the reservoir used to provide
//! (`support_bound`, `estimate_rank_of`, snapshot/restore for migration)
//! are gone: the deterministic sketch replaced that rung wholesale.

mod eps;
mod reservoir;

pub use eps::EpsSketch;
pub use reservoir::{estimate_rank, ReservoirSketch};
