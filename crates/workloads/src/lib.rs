//! # cgselect-workloads — reproducible experiment inputs
//!
//! Generators for the input distributions of the paper's evaluation (§5)
//! plus the extended zoo the test-suite and ablation benches use:
//!
//! * [`Distribution::Random`] — `n/p` uniformly random values per processor
//!   (the paper's near-best case; the paper averages five seeds);
//! * [`Distribution::Sorted`] — the numbers `0..n−1` with processor `i`
//!   holding `i·n/p … (i+1)·n/p − 1` (the paper's near-worst case: after
//!   one iteration about half the processors lose *all* their data);
//! * plus reverse-sorted, few-distinct, Gaussian-ish, Zipf-like, organ-pipe
//!   and all-equal variants, and imbalanced initial layouts for exercising
//!   the load balancers.
//!
//! All generation is deterministic in `(distribution, n, p, seed)`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input value distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Uniformly random 63-bit values (the paper's "random" input).
    Random,
    /// Globally sorted, blocked across processors (the paper's "sorted"
    /// input — close to the worst case for the selection algorithms).
    Sorted,
    /// Reverse-sorted, blocked.
    ReverseSorted,
    /// Uniform over `d` distinct values — duplicate-heavy selection.
    FewDistinct(u64),
    /// Sum of eight uniforms (approximately normal), centered.
    Gaussian,
    /// Power-law-ish: `u^4` scaled — most mass near 0, long tail.
    Zipf,
    /// Organ pipe: ascending then descending (adversarial for pivoting).
    OrganPipe,
    /// Every element identical.
    AllEqual,
}

impl Distribution {
    /// The two distributions the paper evaluates.
    pub const PAPER: [Distribution; 2] = [Distribution::Random, Distribution::Sorted];

    /// Name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Random => "random",
            Distribution::Sorted => "sorted",
            Distribution::ReverseSorted => "reverse-sorted",
            Distribution::FewDistinct(_) => "few-distinct",
            Distribution::Gaussian => "gaussian",
            Distribution::Zipf => "zipf",
            Distribution::OrganPipe => "organ-pipe",
            Distribution::AllEqual => "all-equal",
        }
    }
}

/// How the `n` elements are initially laid out over the `p` processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Layout {
    /// `⌈n/p⌉` or `⌊n/p⌋` per processor (the paper's setup).
    #[default]
    Balanced,
    /// Everything on the last processor (worst case for load balancers).
    Hoarded,
    /// Linearly growing: processor `i` gets ~`2·n·(i+1)/(p(p+1))`.
    Staircase,
}

impl Layout {
    /// Per-processor element counts summing to exactly `n`.
    pub fn sizes(&self, n: usize, p: usize) -> Vec<usize> {
        assert!(p >= 1);
        match self {
            Layout::Balanced => (0..p).map(|i| n / p + usize::from(i < n % p)).collect(),
            Layout::Hoarded => {
                let mut v = vec![0; p];
                v[p - 1] = n;
                v
            }
            Layout::Staircase => {
                let total_weight = p * (p + 1) / 2;
                let mut sizes: Vec<usize> = (0..p).map(|i| n * (i + 1) / total_weight).collect();
                let assigned: usize = sizes.iter().sum();
                sizes[p - 1] += n - assigned; // exact remainder
                sizes
            }
        }
    }
}

/// Generates the distributed input: one vector per processor, sizes set by
/// `layout`, values drawn from `dist`, deterministic in `seed`.
pub fn generate_with_layout(
    dist: Distribution,
    layout: Layout,
    n: usize,
    p: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    let sizes = layout.sizes(n, p);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC65E_1EC7_0000_0000);
    let mut next_sorted = 0u64;
    sizes
        .iter()
        .map(|&s| {
            (0..s)
                .map(|_| match dist {
                    Distribution::Random => rng.random::<u64>() >> 1,
                    Distribution::Sorted => {
                        let v = next_sorted;
                        next_sorted += 1;
                        v
                    }
                    Distribution::ReverseSorted => {
                        let v = (n as u64) - 1 - next_sorted;
                        next_sorted += 1;
                        v
                    }
                    Distribution::FewDistinct(d) => rng.random_range(0..d.max(1)),
                    Distribution::Gaussian => (0..8).map(|_| rng.random_range(0..1u64 << 20)).sum(),
                    Distribution::Zipf => {
                        let u = rng.random::<f64>();
                        (u.powi(4) * 1e12) as u64
                    }
                    Distribution::OrganPipe => {
                        let i = next_sorted;
                        next_sorted += 1;
                        let half = (n as u64) / 2;
                        if i < half {
                            i
                        } else {
                            (n as u64) - i
                        }
                    }
                    Distribution::AllEqual => 42,
                })
                .collect()
        })
        .collect()
}

/// Generates the paper's balanced layout for the given distribution.
///
/// ```
/// use cgselect_workloads::{generate, Distribution};
///
/// let parts = generate(Distribution::Sorted, 8, 2, 0);
/// assert_eq!(parts, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
///
/// let random = generate(Distribution::Random, 1000, 4, 7);
/// assert_eq!(random.iter().map(Vec::len).sum::<usize>(), 1000);
/// assert_eq!(random, generate(Distribution::Random, 1000, 4, 7)); // seeded
/// ```
pub fn generate(dist: Distribution, n: usize, p: usize, seed: u64) -> Vec<Vec<u64>> {
    generate_with_layout(dist, Layout::Balanced, n, p, seed)
}

/// Summary statistics over repeated measurements (the paper averages five
/// random-seed runs per data point).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Stats {
    /// Computes the summary; panics on an empty slice.
    pub fn from(xs: &[f64]) -> Stats {
        assert!(!xs.is_empty(), "Stats::from on empty slice");
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Stats {
            mean,
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            std: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_layout_matches_paper() {
        let sizes = Layout::Balanced.sizes(10, 4);
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(Layout::Balanced.sizes(8, 4), vec![2, 2, 2, 2]);
    }

    #[test]
    fn layouts_sum_to_n() {
        for layout in [Layout::Balanced, Layout::Hoarded, Layout::Staircase] {
            for (n, p) in [(100, 4), (7, 3), (0, 5), (1000, 7)] {
                let sizes = layout.sizes(n, p);
                assert_eq!(sizes.len(), p);
                assert_eq!(sizes.iter().sum::<usize>(), n, "{layout:?} n={n} p={p}");
            }
        }
    }

    #[test]
    fn sorted_is_the_papers_blocked_identity() {
        let parts = generate(Distribution::Sorted, 12, 3, 0);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6, 7]);
        assert_eq!(parts[2], vec![8, 9, 10, 11]);
    }

    #[test]
    fn reverse_sorted_is_descending_globally() {
        let parts = generate(Distribution::ReverseSorted, 6, 2, 0);
        let flat: Vec<u64> = parts.into_iter().flatten().collect();
        assert_eq!(flat, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_varies_across_seeds() {
        let a = generate(Distribution::Random, 100, 4, 7);
        let b = generate(Distribution::Random, 100, 4, 7);
        let c = generate(Distribution::Random, 100, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn few_distinct_stays_in_domain() {
        let parts = generate(Distribution::FewDistinct(3), 300, 3, 1);
        assert!(parts.iter().flatten().all(|&v| v < 3));
    }

    #[test]
    fn organ_pipe_shape() {
        let parts = generate(Distribution::OrganPipe, 8, 1, 0);
        assert_eq!(parts[0], vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn all_equal_is_constant() {
        let parts = generate(Distribution::AllEqual, 50, 5, 3);
        assert!(parts.iter().flatten().all(|&v| v == 42));
    }

    #[test]
    fn hoarded_layout_hoards() {
        let parts = generate_with_layout(Distribution::Random, Layout::Hoarded, 64, 4, 0);
        assert_eq!(parts[0].len(), 0);
        assert_eq!(parts[3].len(), 64);
    }

    #[test]
    fn stats_summary() {
        let s = Stats::from(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.118).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn stats_rejects_empty() {
        let _ = Stats::from(&[]);
    }
}
