//! Wall-clock hot-path contract: the branchless kernels, the parallel
//! intra-shard scans and the Floyd–Rivest finisher may change **only wall
//! time** — never answers, modeled ops, collective rounds, or makespan
//! determinism.
//!
//! These tests run in their own binary (process) because they flip the
//! process-global scalar-reference switch, which must not interleave with
//! twin-run makespan assertions elsewhere; within the file a mutex
//! serializes them for the same reason.

use std::sync::Mutex;

use cgselect::{
    Answer, Bounds, Engine, EngineConfig, MachineModel, Query, Request, Response, RunReport,
};

/// Serializes the tests in this file: both touch the process-global
/// scalar-reference mode (directly or by comparing twin runs).
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn dataset(n: u64) -> Vec<u64> {
    (0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (4 * n)).collect()
}

fn mixed_requests(n: u64) -> Vec<Request<u64>> {
    vec![
        Request::rank(n / 7),
        Request::median(),
        Request::quantile(0.99),
        Request::rank_of(n / 2),
        Request::rank_of(3),
        Request::count_between(Bounds::closed(n / 4, n / 2)),
    ]
}

fn summarize(report: &RunReport<u64>) -> (Vec<Response<u64>>, u64, f64) {
    (
        report.outcomes.iter().map(|o| o.response.clone()).collect(),
        report.collective_ops,
        report.makespan,
    )
}

/// One engine lifecycle (ingest → mixed batches → more ingest → batch) at
/// the given scan fan-out; per-shard slices are big enough to cross the
/// parallel-scan threshold on the unindexed path.
fn lifecycle(scan_threads: usize, index_buckets: usize) -> Vec<(Vec<Response<u64>>, u64, f64)> {
    let n: u64 = 1 << 18;
    let cfg = EngineConfig::new(2)
        .model(MachineModel::cm5())
        .index_buckets(index_buckets)
        .scan_threads(scan_threads);
    let mut engine: Engine<u64> = Engine::new(cfg).unwrap();
    engine.ingest(dataset(n)).unwrap();
    let mut out = Vec::new();
    out.push(summarize(&engine.run(&mixed_requests(n)).unwrap()));
    engine.ingest((0..n / 64).map(|i| 7 * i + 1).collect()).unwrap();
    out.push(summarize(&engine.run(&mixed_requests(n + n / 64)).unwrap()));
    out
}

#[test]
fn scan_threads_change_no_answer_no_ops_no_makespan() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Indexed and index-free engines, sequential vs fanned-out scans: the
    // deterministic chunk-order reduction must make every report —
    // responses, collective ops, virtual makespan — bit-identical.
    for index_buckets in [0usize, 64] {
        let base = lifecycle(1, index_buckets);
        let fanned = lifecycle(4, index_buckets);
        assert_eq!(base.len(), fanned.len());
        for (b, f) in base.iter().zip(&fanned) {
            assert_eq!(b.0, f.0, "answers must not depend on scan_threads");
            assert_eq!(b.1, f.1, "collective ops must not depend on scan_threads");
            assert!(
                (b.2 - f.2).abs() < 1e-12,
                "makespan must not depend on scan_threads ({} vs {})",
                b.2,
                f.2
            );
        }
    }
}

#[test]
fn scan_threads_are_reported_for_cost_attribution() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = EngineConfig::new(2).model(MachineModel::free()).scan_threads(3);
    let mut engine: Engine<u64> = Engine::new(cfg).unwrap();
    engine.ingest((0..10_000u64).collect()).unwrap();
    let report = engine.run(&[Request::median()]).unwrap();
    assert_eq!(report.scan_threads, 3);
}

#[test]
fn kernel_and_reference_paths_agree_end_to_end() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The in-binary pre-PR baseline (scalar reference loops + sort
    // finisher) must produce the same answers and the same collective
    // rounds as the kernels — the wall-clock work is the only difference.
    // (Charged local ops legitimately differ on the finisher: Floyd–Rivest
    // measures fewer comparisons than sorting, and both are charged as
    // measured, so makespans are compared per-mode, not across modes.)
    let run = |reference: bool| {
        cgselect::seqsel::set_scalar_reference_mode(reference);
        let out = lifecycle(1, 64);
        cgselect::seqsel::set_scalar_reference_mode(false);
        out
    };
    let kernel = run(false);
    let reference = run(true);
    for (k, r) in kernel.iter().zip(&reference) {
        assert_eq!(k.0, r.0, "answers must not depend on the kernel path");
        assert_eq!(k.1, r.1, "collective rounds must not depend on the kernel path");
    }

    // The legacy Query surface agrees too.
    cgselect::seqsel::set_scalar_reference_mode(true);
    let mut engine: Engine<u64> = Engine::new(EngineConfig::new(2)).unwrap();
    engine.ingest(dataset(1 << 14)).unwrap();
    let reference_answers = engine.execute(&[Query::Median, Query::Rank(17)]).unwrap().answers;
    cgselect::seqsel::set_scalar_reference_mode(false);
    let mut engine: Engine<u64> = Engine::new(EngineConfig::new(2)).unwrap();
    engine.ingest(dataset(1 << 14)).unwrap();
    let kernel_answers = engine.execute(&[Query::Median, Query::Rank(17)]).unwrap().answers;
    assert_eq!(reference_answers, kernel_answers);
    assert!(matches!(kernel_answers[0], Answer::Value(_)));
}
