//! The engine behind its async frontend: concurrent clients submit single
//! queries into a bounded `SubmissionQueue` and await `Ticket`s, while the
//! batcher thread coalesces everything arriving within the micro-batch
//! window into one collective pass — so R concurrent clients pay
//! `O(log n + R)` collective rounds between them, not `O(R·log n)`.
//!
//! Every answer is asserted against a sorted-vector oracle, so this example
//! doubles as an end-to-end check:
//!
//! ```text
//! cargo run --release --example async_frontend
//! ```

use std::time::Duration;

use cgselect::{Answer, Engine, EngineConfig, FrontendConfig, Query, SubmitError};

fn main() {
    let p = 8;
    let n = 200_000u64;

    // ---- A populated engine, handed off to the frontend -----------------
    let mut engine: Engine<u64> = Engine::new(EngineConfig::new(p)).unwrap();
    // `+ 1` keeps 0 out of the base data, so the zeros ingested below are
    // provably the only zeros resident.
    let data: Vec<u64> =
        (0..n).map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20) + 1).collect();
    let mut oracle = data.clone();
    oracle.sort_unstable();
    engine.ingest(data).unwrap();
    let queue = engine.into_frontend(
        FrontendConfig::new().window(Duration::from_millis(2)).max_batch(512).queue_capacity(4096),
    );
    println!("engine handed to the batcher thread: {n} keys over {p} shards, 2 ms window");

    // ---- Concurrent clients --------------------------------------------
    let clients = 6;
    let per_client = 50u64;
    std::thread::scope(|s| {
        for c in 0..clients {
            let queue = queue.clone();
            let oracle = &oracle;
            s.spawn(move || {
                // Fire all queries, then await: each client only ever
                // submits single queries — the *frontend* does the
                // batching across clients.
                let tickets: Vec<_> = (0..per_client)
                    .map(|i| {
                        let k = (c * per_client + i) * (n / (clients * per_client));
                        (k, queue.submit(Query::Rank(k)).expect("capacity sized for the demo"))
                    })
                    .collect();
                for (k, t) in tickets {
                    let answer = t.wait().expect("query failed");
                    assert_eq!(answer, Answer::Value(oracle[k as usize]), "rank {k}");
                }
            });
        }
    });
    let stats = queue.stats();
    println!(
        "{} queries from {clients} clients ran in {} batches \
         (mean occupancy {:.1}, max {}): {:.1} collective rounds/query, \
         mean wait {:?}, max wait {:?}",
        stats.queries_executed,
        stats.batches,
        stats.mean_occupancy(),
        stats.max_occupancy,
        stats.rounds_per_query(),
        stats.mean_wait(),
        stats.max_wait,
    );
    assert_eq!(stats.queries_executed, clients * per_client);
    assert!(
        stats.batches < clients * per_client,
        "micro-batching must coalesce concurrent clients"
    );

    // ---- Mutations flow through the same queue, FIFO --------------------
    let before = queue.submit(Query::Rank(0)).unwrap();
    let ingest = queue.submit_ingest(vec![0, 0, 0]).unwrap(); // three new minima
    let after = queue.submit(Query::TopK(4)).unwrap();
    assert_eq!(before.wait().unwrap(), Answer::Value(oracle[0]));
    assert_eq!(ingest.wait().unwrap().elements, 3);
    assert_eq!(after.wait().unwrap(), Answer::Top(vec![0, 0, 0, oracle[0]]));
    let removed = queue.submit_delete(vec![0]).unwrap().wait().unwrap().elements;
    assert_eq!(removed, 3, "exactly the ingested zeros are removed");
    println!("FIFO mutations: ingested 3 zeros, deleted {removed} again");

    // ---- Admission control ----------------------------------------------
    let tiny = queue.shutdown().expect("hand the engine back");
    let queue = tiny.into_frontend(FrontendConfig::new().queue_capacity(4).start_paused(true));
    let staged: Vec<_> = (0..4).map(|i| queue.submit(Query::Rank(i)).unwrap()).collect();
    match queue.submit(Query::Median) {
        Err(SubmitError::Saturated { capacity }) => {
            println!("5th submission rejected: queue saturated at capacity {capacity}")
        }
        other => panic!("expected saturation, got {other:?}"),
    }
    queue.resume();
    for (i, t) in staged.into_iter().enumerate() {
        assert_eq!(t.wait().unwrap(), Answer::Value(oracle[i]));
    }
    println!("queue drained and recovered; rejected = {}", queue.stats().rejected);

    let engine = queue.shutdown().expect("engine survives both frontends");
    println!(
        "done: engine back on the main thread with {} resident keys, {} batches total",
        engine.len(),
        engine.batches()
    );
}
