//! The element type abstraction shared by the whole stack.

/// An orderable, copyable element that can ride in messages.
///
/// All selection and load-balancing code is generic over `Key`. The sentinel
/// constants exist for algorithms that pad with extreme values (e.g. bitonic
/// sort pads short local arrays with `MAX_SENTINEL`).
pub trait Key: Copy + Ord + Send + Sync + std::fmt::Debug + 'static {
    /// A value ordered ≤ every value of the type.
    const MIN_SENTINEL: Self;
    /// A value ordered ≥ every value of the type.
    const MAX_SENTINEL: Self;
}

macro_rules! impl_key_for_int {
    ($($t:ty),*) => {
        $(impl Key for $t {
            const MIN_SENTINEL: Self = <$t>::MIN;
            const MAX_SENTINEL: Self = <$t>::MAX;
        })*
    };
}

impl_key_for_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// A totally ordered `f64` (ordered by `f64::total_cmp`), so floating-point
/// data can be used as selection keys.
///
/// NaNs order after +∞ under `total_cmp`; the sentinels are therefore the
/// extreme NaN bit patterns, guaranteeing the sentinel property even for
/// inputs containing infinities or NaNs.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps a raw `f64`.
    #[inline]
    pub fn new(v: f64) -> Self {
        OrdF64(v)
    }

    /// Unwraps to the raw `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Key for OrdF64 {
    // Under `total_cmp`, the NaN with sign bit set and all-ones payload is
    // the minimum of the whole type, and its positive twin is the maximum —
    // these bound every float including infinities and ordinary NaNs.
    const MIN_SENTINEL: Self = OrdF64(f64::from_bits(0xFFFF_FFFF_FFFF_FFFF));
    const MAX_SENTINEL: Self = OrdF64(f64::from_bits(0x7FFF_FFFF_FFFF_FFFF));
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}
impl From<OrdF64> for f64 {
    fn from(v: OrdF64) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::absurd_extreme_comparisons)] // the triviality IS the property
    fn int_sentinels_bound_everything() {
        for v in [-5i64, 0, 7, i64::MAX - 1] {
            assert!(i64::MIN_SENTINEL <= v);
            assert!(v <= i64::MAX_SENTINEL);
        }
    }

    #[test]
    fn ordf64_total_order() {
        let mut v = [OrdF64(3.0), OrdF64(-1.0), OrdF64(f64::INFINITY), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[3], OrdF64(f64::INFINITY));
    }

    #[test]
    fn ordf64_sentinels_bound_infinities() {
        assert!(OrdF64::MIN_SENTINEL <= OrdF64(f64::NEG_INFINITY));
        assert!(OrdF64(f64::INFINITY) <= OrdF64::MAX_SENTINEL);
        assert!(OrdF64::MIN_SENTINEL <= OrdF64(0.0));
    }

    #[test]
    fn ordf64_negative_zero_sorts_before_positive_zero() {
        // total_cmp distinguishes -0.0 < +0.0; the order is total either way.
        assert!(OrdF64(-0.0) < OrdF64(0.0));
    }
}
