//! Regenerates the paper's fig6 (see `cgselect_bench::figs`).
fn main() {
    let quick = cgselect_bench::quick_mode();
    cgselect_bench::figs::fig6(quick);
}
