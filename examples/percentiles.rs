//! Distributed tail-latency percentiles.
//!
//! A realistic use of distributed selection: each of 16 "ingest nodes"
//! holds a shard of request-latency samples (log-normal-ish, heavy tailed);
//! we compute p50/p90/p99/p99.9 *without* gathering or sorting the full
//! data set.
//!
//! Two ways are shown: one parallel selection per percentile (the paper's
//! algorithm), and this library's multi-rank extension that answers all
//! four in a single collective pass.
//!
//! Run with: `cargo run --release --example percentiles`

use cgselect::{
    parallel_multi_select, parallel_select, Algorithm, Machine, MachineModel, OrdF64,
    SelectionConfig,
};
use cgselect_seqsel::KernelRng;

/// Synthesizes heavy-tailed latencies (milliseconds) for one shard.
fn shard_latencies(rank: usize, per_shard: usize) -> Vec<OrdF64> {
    let mut rng = KernelRng::derive(2024, rank as u64);
    (0..per_shard)
        .map(|_| {
            // Product of uniforms ~ log-normal-ish; occasionally a straggler.
            let base = 2.0 + 30.0 * rng.unit_f64() * rng.unit_f64();
            let straggler = if rng.below(1000) < 3 { 500.0 * rng.unit_f64() } else { 0.0 };
            OrdF64(base + straggler)
        })
        .collect()
}

fn main() {
    let p = 16;
    let per_shard = 200_000;
    let n = (p * per_shard) as u64;

    println!("Latency percentiles over {n} samples on {p} ingest nodes\n");

    let percentiles = [(50.0, "p50"), (90.0, "p90"), (99.0, "p99"), (99.9, "p99.9")];
    let ranks: Vec<u64> = percentiles
        .iter()
        .map(|(pct, _)| (((n - 1) as f64) * pct / 100.0).round() as u64)
        .collect();
    let machine = Machine::with_model(p, MachineModel::modern());
    let cfg = SelectionConfig::with_seed(7);

    // One selection per percentile (paper's Algorithm 4 each time).
    println!("-- one fast-randomized selection per percentile --");
    let mut single_total = 0.0f64;
    for ((_, label), &k) in percentiles.iter().zip(&ranks) {
        let outs = machine
            .run(|proc| {
                let mine = shard_latencies(proc.rank(), per_shard);
                parallel_select(proc, mine, k, Algorithm::FastRandomized, &cfg)
            })
            .expect("selection failed");
        let t = outs.iter().map(|o| o.total_seconds).fold(0.0, f64::max);
        single_total += t;
        println!(
            "{label:>6} = {:>8.3} ms   (rank {k}, {} iterations, {:.2} ms virtual)",
            outs[0].value.get(),
            outs[0].iterations,
            t * 1e3,
        );
    }

    // All four percentiles in one multi-select pass (library extension).
    println!("\n-- all four percentiles in one multi-select pass --");
    let outs = machine
        .run(|proc| {
            let mine = shard_latencies(proc.rank(), per_shard);
            let t0 = proc.now();
            let values = parallel_multi_select(proc, mine, &ranks, &cfg);
            (values, proc.now() - t0)
        })
        .expect("multi-select failed");
    let (values, _) = &outs[0];
    let multi_time = outs.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    for ((_, label), v) in percentiles.iter().zip(values) {
        println!("{label:>6} = {:>8.3} ms", v.get());
    }
    println!(
        "\nvirtual time: {:.2} ms for all four (vs {:.2} ms for four separate \
         selections — one data pass instead of four)",
        multi_time * 1e3,
        single_total * 1e3,
    );
}
