//! Parallel sorting by regular sampling (PSRS).

use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::OpCount;

use crate::local_sort_counted;
use crate::merge::kway_merge;

/// Sorts the distributed data: each processor contributes `data`, each
/// returns a sorted local run such that concatenating the runs in rank
/// order yields the globally sorted sequence.
///
/// Classic PSRS:
/// 1. sort locally;
/// 2. take `p−1` regular samples per processor;
/// 3. gather the samples on P0, sort them, pick `p−1` splitters at regular
///    positions, broadcast;
/// 4. partition the sorted local run by the splitters (binary searches);
/// 5. exchange partitions with the transportation primitive;
/// 6. k-way merge the received runs.
///
/// Works for any `p` and any local sizes (including empty); with regular
/// sampling no processor receives more than ~`2n/p` elements for balanced
/// inputs. For the tiny samples of fast randomized selection the paper's
/// cost is dominated by the `O(τ·p)` of the exchange, which is exactly why
/// `SampleSortAlgo::GatherSort` exists as an alternative.
///
/// ```
/// use cgselect_runtime::Machine;
/// use cgselect_sort::sample_sort;
///
/// let runs = Machine::new(3)
///     .run(|proc| {
///         let mine: Vec<u64> = vec![7, 1, 9]
///             .into_iter()
///             .map(|v| v + proc.rank() as u64 * 10)
///             .collect();
///         sample_sort(proc, mine)
///     })
///     .unwrap();
/// let flat: Vec<u64> = runs.into_iter().flatten().collect();
/// assert_eq!(flat, vec![1, 7, 9, 11, 17, 19, 21, 27, 29]);
/// ```
pub fn sample_sort<T: Key>(proc: &mut Proc, mut data: Vec<T>) -> Vec<T> {
    let p = proc.nprocs();
    let mut ops = OpCount::new();
    local_sort_counted(&mut data, &mut ops);
    proc.charge_ops(ops.total());
    if p == 1 {
        return data;
    }

    // Regular samples of the sorted local run — at most p-1, but never
    // more than the local size (tiny runs would otherwise inflate the
    // splitter gather to O(p²) duplicated values).
    let count = (p - 1).min(data.len());
    let mut samples: Vec<T> = Vec::with_capacity(count);
    for i in 1..=count {
        let pos = (i * data.len()) / (count + 1);
        samples.push(data[pos.min(data.len() - 1)]);
    }
    proc.charge_ops(samples.len() as u64);

    // Root gathers all samples, sorts them, picks p-1 regular splitters.
    let gathered = proc.gather_flat(0, samples);
    let splitters: Vec<T> = {
        let picked = gathered.map(|mut all| {
            let mut ops = OpCount::new();
            local_sort_counted(&mut all, &mut ops);
            proc.charge_ops(ops.total());
            if all.is_empty() {
                Vec::new()
            } else {
                (1..p).map(|i| all[(i * all.len()) / p]).collect()
            }
        });
        proc.broadcast(0, picked)
    };

    // Partition the sorted local run by the splitters (binary searches on
    // a sorted array: log(n) comparisons per splitter).
    let mut cuts = Vec::with_capacity(splitters.len() + 2);
    cuts.push(0usize);
    let mut cmps = 0u64;
    for s in &splitters {
        let base = *cuts.last().unwrap();
        let off = data[base..].partition_point(|x| {
            cmps += 1;
            x <= s
        });
        cuts.push(base + off);
    }
    cuts.push(data.len());
    proc.charge_ops(cmps);

    // If there were fewer splitters than p-1 (everything empty), pad cuts.
    while cuts.len() < p + 1 {
        cuts.push(data.len());
    }

    let mut outgoing: Vec<Vec<T>> = Vec::with_capacity(p);
    for w in cuts.windows(2) {
        outgoing.push(data[w[0]..w[1]].to_vec());
    }
    proc.charge_ops(data.len() as u64); // copy into the send buffers

    let incoming = proc.all_to_allv(outgoing);

    let mut ops = OpCount::new();
    let merged = kway_merge(incoming, &mut ops);
    proc.charge_ops(ops.total());
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel, OrdF64};
    use cgselect_seqsel::KernelRng;

    fn check_global_sort(parts: Vec<Vec<u64>>) {
        let p = parts.len();
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mine = parts[proc.rank()].clone();
                sample_sort(proc, mine)
            })
            .unwrap();
        // Each run sorted; concatenation sorted; multiset preserved.
        let flat: Vec<u64> = out.iter().flatten().copied().collect();
        let mut want: Vec<u64> = parts.into_iter().flatten().collect();
        want.sort_unstable();
        assert_eq!(flat, want);
    }

    #[test]
    fn sorts_random_data() {
        let mut rng = KernelRng::new(1);
        for p in [1usize, 2, 3, 5, 8] {
            let parts: Vec<Vec<u64>> =
                (0..p).map(|_| (0..200).map(|_| rng.next_u64() % 500).collect()).collect();
            check_global_sort(parts);
        }
    }

    #[test]
    fn sorts_adversarial_layouts() {
        // Already sorted blocks (the paper's worst case for selection).
        let parts: Vec<Vec<u64>> = (0..4).map(|i| (i * 100..(i + 1) * 100).collect()).collect();
        check_global_sort(parts);
        // Reverse-sorted blocks.
        let parts: Vec<Vec<u64>> =
            (0..4).rev().map(|i| (i * 100..(i + 1) * 100).collect()).collect();
        check_global_sort(parts);
    }

    #[test]
    fn handles_empty_processors() {
        check_global_sort(vec![vec![], (0..50).collect(), vec![], vec![7, 3, 7]]);
        check_global_sort(vec![vec![], vec![], vec![]]);
    }

    #[test]
    fn handles_heavy_duplicates() {
        let parts: Vec<Vec<u64>> = (0..6).map(|_| vec![42; 100]).collect();
        check_global_sort(parts);
    }

    #[test]
    fn handles_wildly_unequal_sizes() {
        let mut rng = KernelRng::new(9);
        let sizes = [0usize, 1, 1000, 3, 0, 250];
        let parts: Vec<Vec<u64>> =
            sizes.iter().map(|&s| (0..s).map(|_| rng.next_u64() % 97).collect()).collect();
        check_global_sort(parts);
    }

    #[test]
    fn works_with_float_keys() {
        let parts: Vec<Vec<OrdF64>> =
            vec![vec![OrdF64(3.5), OrdF64(-1.0)], vec![OrdF64(0.25), OrdF64(100.0), OrdF64(-7.5)]];
        let out = Machine::with_model(2, MachineModel::free())
            .run(|proc| {
                let mine = parts[proc.rank()].clone();
                sample_sort(proc, mine)
            })
            .unwrap();
        let flat: Vec<f64> = out.iter().flatten().map(|v| v.get()).collect();
        assert_eq!(flat, vec![-7.5, -1.0, 0.25, 3.5, 100.0]);
    }
}
