//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships the
//! slice of criterion's API its benches use (`benchmark_group`,
//! `bench_with_input`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros). Instead of criterion's statistical engine it runs each bench a
//! bounded number of iterations and prints the mean wall-clock time — enough
//! to compare configurations on one machine, with none of the confidence
//! analysis.
//!
//! Iteration count: `CRITERION_SHIM_ITERS` env var if set; otherwise 1 when
//! invoked with `--test` (what `cargo test` passes to `harness = false`
//! targets), else 10.
//!
//! **Registry swap note.** Mirrors `criterion` 0.5: `Criterion`,
//! `benchmark_group`, `bench_with_input`/`bench_function`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. The
//! real crate is a drop-in at these call sites and upgrades the output to
//! full statistical analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Modeled work per iteration; printed as a rate next to the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u32,
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations, recording the
    /// mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last = Some(start.elapsed() / self.iters.max(1));
    }
}

fn configured_iters() -> u32 {
    if let Ok(v) = std::env::var("CRITERION_SHIM_ITERS") {
        if let Ok(n) = v.parse::<u32>() {
            return n.max(1);
        }
    }
    if std::env::args().any(|a| a == "--test") {
        1
    } else {
        10
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count comes from
    /// the environment (see the crate docs).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no statistical engine to budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in the printed rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { iters: configured_iters(), last: None };
        routine(&mut b, input);
        self.report(&id.name, b);
        self
    }

    /// Benchmarks `routine` with no input parameter.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: configured_iters(), last: None };
        routine(&mut b);
        self.report(&id.name, b);
        self
    }

    fn report(&self, id: &str, b: Bencher) {
        let Some(mean) = b.last else {
            println!("{}/{id:<40} (no measurement: routine never called iter)", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!("{}/{id:<40} {:>12.3?} / iter ({} iters){rate}", self.name, mean, b.iters);
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }
}

/// Bundles bench functions under one name, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
