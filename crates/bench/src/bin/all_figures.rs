//! Regenerates the paper's all_figures (see `cgselect_bench::figs`).
fn main() {
    let quick = cgselect_bench::quick_mode();
    cgselect_bench::figs::all(quick);
}
