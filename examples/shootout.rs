//! Mini Figure-1: all four algorithms on random vs sorted input.
//!
//! A quick on-screen version of the paper's central comparison (the full
//! parameter sweeps live in `crates/bench`).
//!
//! Run with: `cargo run --release --example shootout`

use cgselect::{
    median_on_machine, Algorithm, Balancer, Distribution, MachineModel, SelectionConfig,
};

fn main() {
    let p = 16;
    let n = 1 << 18; // 256k keys
    let model = MachineModel::cm5();

    println!("Median of n = {n} keys on p = {p} processors (virtual CM-5 seconds)\n");
    println!("{:>20} | {:>12} | {:>12} | ratio vs fastest", "algorithm", "random", "sorted");
    println!("{}", "-".repeat(68));

    let mut fastest_random = f64::INFINITY;
    let mut rows = Vec::new();
    for algo in Algorithm::ALL {
        // The paper runs MoM with global-exchange balancing and the other
        // three without balancing (Figure 1's setup).
        let balancer = if algo == Algorithm::MedianOfMedians {
            Balancer::GlobalExchange
        } else {
            Balancer::None
        };
        let mut times = Vec::new();
        for dist in [Distribution::Random, Distribution::Sorted] {
            let parts = cgselect::generate(dist, n, p, 9);
            let cfg = SelectionConfig::with_seed(11).balancer(balancer);
            let sel = median_on_machine(p, model, &parts, algo, &cfg).expect("selection failed");
            times.push(sel.makespan());
        }
        fastest_random = fastest_random.min(times[0]);
        rows.push((algo.name(), times[0], times[1]));
    }

    for (name, rnd, sorted) in rows {
        println!("{name:>20} | {rnd:>11.4}s | {sorted:>11.4}s | {:>6.1}x", rnd / fastest_random);
    }

    println!(
        "\nExpected shape (paper §5): both randomized algorithms beat both\n\
         deterministic ones by roughly an order of magnitude; bucket-based\n\
         beats median-of-medians by about 2x."
    );
}
