//! Latency vs throughput across micro-batch window sizes on the engine's
//! async frontend.
//!
//! Concurrent producer threads submit single rank queries at a fixed pace;
//! the batcher coalesces whatever lands inside the window into one
//! multi-select pass. Widening the window raises batch occupancy (fewer
//! collective rounds per query, higher throughput) at the price of queue
//! wait time (worse single-query latency) — this binary sweeps that
//! trade-off and writes `results/frontend.{csv,txt}`.
//!
//! Pass `--quick` for a reduced grid.

use std::time::{Duration, Instant};

use cgselect_bench::chart::{markdown_table, write_csv, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_engine::{Engine, EngineConfig, FrontendConfig, Query};
use cgselect_workloads::{generate, Distribution};

fn main() {
    let quick = quick_mode();
    let dir = results_dir();
    let p = 8;
    let n: usize = if quick { 1 << 16 } else { 1 << 19 };
    let clients: u64 = if quick { 4 } else { 8 };
    let per_client: u64 = if quick { 32 } else { 64 };
    let pace = Duration::from_micros(500);
    let windows_ms: &[u64] = if quick { &[0, 4] } else { &[0, 1, 4, 16] };

    println!(
        "async frontend sweep: n = {n}, p = {p}, {clients} clients x {per_client} queries, \
         {}us pace",
        pace.as_micros()
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &window_ms in windows_ms {
        let data: Vec<u64> =
            generate(Distribution::Random, n, p, 7).into_iter().flatten().collect();
        let mut engine: Engine<u64> = Engine::new(EngineConfig::new(p)).expect("engine start");
        engine.ingest(data).expect("ingest");
        let total = engine.len();
        let queue = engine.into_frontend(
            FrontendConfig::new()
                .window(Duration::from_millis(window_ms))
                .max_batch(4096)
                .queue_capacity(8192),
        );

        let wall0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let queue = queue.clone();
                s.spawn(move || {
                    let tickets: Vec<_> = (0..per_client)
                        .map(|i| {
                            let k = ((c * per_client + i) * 7919) % total;
                            let t = queue.submit(Query::Rank(k)).expect("queue sized for sweep");
                            std::thread::sleep(pace);
                            t
                        })
                        .collect();
                    for t in tickets {
                        t.wait().expect("query failed");
                    }
                });
            }
        });
        let wall = wall0.elapsed().as_secs_f64();
        let stats = queue.stats();
        assert_eq!(stats.queries_executed, clients * per_client);

        let throughput = stats.queries_executed as f64 / wall;
        rows.push(format!(
            "{n},{p},{clients},{per_client},{window_ms},{},{:.2},{:.4},{},{:.6},{:.6},{:.1},{:.6}",
            stats.batches,
            stats.mean_occupancy(),
            stats.rounds_per_query(),
            stats.collective_ops,
            stats.mean_wait().as_secs_f64(),
            stats.max_wait.as_secs_f64(),
            throughput,
            wall
        ));
        table.push(vec![
            format!("{window_ms} ms"),
            stats.batches.to_string(),
            format!("{:.1}", stats.mean_occupancy()),
            format!("{:.2}", stats.rounds_per_query()),
            format!("{:.2} ms", stats.mean_wait().as_secs_f64() * 1e3),
            format!("{:.2} ms", stats.max_wait.as_secs_f64() * 1e3),
            format!("{throughput:.0}"),
        ]);
        println!(
            "window {window_ms:>3} ms: {:>4} batches (occupancy {:>6.1}), \
             {:>6.2} rounds/query, wait mean {:>7.2} ms / max {:>7.2} ms, {:>7.0} q/s",
            stats.batches,
            stats.mean_occupancy(),
            stats.rounds_per_query(),
            stats.mean_wait().as_secs_f64() * 1e3,
            stats.max_wait.as_secs_f64() * 1e3,
            throughput
        );
    }

    let out = format!(
        "Micro-batch window sweep on the async frontend\n\
         (n = {n}, p = {p}, {clients} paced clients x {per_client} single-query submissions)\n\n{}\n\
         Tuning note: the window is the latency a query pays to buy\n\
         coalescing. Size it near the collective pass time — wider only\n\
         adds wait once every concurrent client already shares the batch.\n",
        markdown_table(
            &[
                "window",
                "batches",
                "occupancy",
                "rounds/query",
                "mean wait",
                "max wait",
                "queries/s"
            ],
            &table
        )
    );
    write_csv(
        &dir.join("frontend.csv"),
        "n,p,clients,per_client,window_ms,batches,mean_occupancy,rounds_per_query,\
         collective_ops,mean_wait_s,max_wait_s,queries_per_s,wall_s",
        &rows,
    );
    write_text(&dir.join("frontend.txt"), &out);
    print!("{out}");
    println!("frontend -> {}/frontend.{{csv,txt}}", dir.display());
}
