//! # cgselect-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure of the paper's §5 (see `src/bin/`), all
//! built from the shared experiment runner in this library:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig1` | Figure 1 — four algorithms, random data, p ∈ {2..128}, n ∈ {128k, 512k, 2M} |
//! | `fig2` | Figure 2 — randomized selection × load balancers × {random, sorted} |
//! | `fig3` | Figure 3 — fast randomized × load balancers × {random, sorted} |
//! | `fig4` | Figure 4 — the two randomized algorithms on sorted data, best balancers |
//! | `fig5` | Figure 5 — randomized: total vs load-balance time, n = 2M |
//! | `fig6` | Figure 6 — fast randomized: total vs load-balance time, n = 2M |
//! | `table1` | Table 1 — expected run-time terms + measured iteration counts |
//! | `table2` | Table 2 — worst-case run-time terms + sorted-input measurements |
//! | `hybrid` | §5's hybrid experiment (deterministic algorithms, randomized kernels) |
//! | `headline` | §5's headline ratios, checked against the paper's claims |
//! | `all_figures` | everything above, writing `results/*.csv` and `results/*.txt` |
//! | `ablation` | ε / δ / sample-sort / threshold sweeps (incl. the paper's ε = 0.6 tuning) |
//! | `whatif` | the headline comparisons under modern / high-latency cost models |
//! | `topology` | the §2.1 crossbar assumption vs hypercube & mesh with per-hop costs |
//! | `wallclock` | branchless kernels vs the scalar-reference baseline, host wall time (`results/engine_wall.*`, `BENCH_wall.json`) |
//!
//! Pass `--quick` to any binary for a reduced grid (1 seed, smaller n).
//!
//! Times are **virtual CM-5 seconds** under the machine model
//! (`MachineModel::cm5()`); the criterion benches under `benches/` measure
//! real wall-clock time of the threaded runtime instead.

#![forbid(unsafe_code)]

pub mod chart;
pub mod experiment;
pub mod figs;

/// Returns true if `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The directory experiment outputs are written to (`results/` at the
/// workspace root), created on demand.
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("results");
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir.canonicalize().expect("results directory must resolve")
}
