//! End-to-end tests of the persistent query engine through the facade:
//! mixed batches checked against a sorted-vector oracle over every workload
//! distribution, batching's collective-round advantage, and session
//! persistence across the whole ingest/query/re-balance/delete lifecycle.

use cgselect::{
    measure_rounds, quantile_rank, Answer, Distribution, Engine, EngineConfig, ExecutionMode,
    MachineModel, Query,
};

fn free_engine(p: usize) -> Engine<u64> {
    Engine::new(EngineConfig::new(p).model(MachineModel::free())).unwrap()
}

/// Ingests `data`, runs one mixed batch (ranks + quantiles + median +
/// top-k), and checks every exact answer against the sorted oracle.
fn check_mixed_batch(engine: &mut Engine<u64>, data: Vec<u64>) {
    let mut oracle = data.clone();
    oracle.sort_unstable();
    let n = oracle.len() as u64;
    engine.ingest(data).unwrap();
    assert_eq!(engine.len(), n);

    let queries = vec![
        Query::Rank(0),
        Query::Rank(n / 3),
        Query::Rank(n - 1),
        Query::quantile(0.1),
        Query::quantile(0.5),
        Query::quantile(0.9),
        Query::Median,
        Query::TopK(7.min(n)),
    ];
    let report = engine.execute(&queries).unwrap();
    assert_eq!(report.answers.len(), queries.len());
    assert_eq!(report.sketch_answers, 0, "exact batch must not touch the sketches");

    assert_eq!(report.answers[0], Answer::Value(oracle[0]));
    assert_eq!(report.answers[1], Answer::Value(oracle[(n / 3) as usize]));
    assert_eq!(report.answers[2], Answer::Value(oracle[(n - 1) as usize]));
    for (i, q) in [0.1, 0.5, 0.9].into_iter().enumerate() {
        assert_eq!(
            report.answers[3 + i],
            Answer::Value(oracle[quantile_rank(q, n) as usize]),
            "quantile {q}"
        );
    }
    assert_eq!(report.answers[6], Answer::Value(oracle[((n - 1) / 2) as usize]));
    assert_eq!(report.answers[7], Answer::Top(oracle[..7.min(n as usize)].to_vec()));
}

#[test]
fn mixed_batches_match_oracle_on_every_distribution() {
    let p = 4;
    let n = 6000;
    let all = [
        Distribution::Random,
        Distribution::Sorted,
        Distribution::ReverseSorted,
        Distribution::FewDistinct(17),
        Distribution::Gaussian,
        Distribution::Zipf,
        Distribution::OrganPipe,
        Distribution::AllEqual,
    ];
    for dist in all {
        let data: Vec<u64> = cgselect::generate(dist, n, p, 23).into_iter().flatten().collect();
        let mut engine = free_engine(p);
        check_mixed_batch(&mut engine, data);
    }
}

#[test]
fn batched_ranks_use_strictly_fewer_collective_rounds_than_single_calls() {
    let p = 4;
    let data: Vec<u64> =
        cgselect::generate(Distribution::Random, 50_000, p, 31).into_iter().flatten().collect();
    // Baseline path (bucket index off): with the index, the repeated ranks
    // below would be answered from the cached histogram for free and this
    // test would measure the cache, not batching. The indexed counterpart
    // lives in tests/engine_indexed.rs.
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).model(MachineModel::free()).index_buckets(0)).unwrap();
    engine.ingest(data).unwrap();
    let n = engine.len();

    let r = 12;
    let ranks: Vec<u64> = (0..r).map(|i| (i * n) / r).collect();
    let batch: Vec<Query> = ranks.iter().map(|&k| Query::Rank(k)).collect();

    // The planner must resolve all 12 distinct ranks on the exact path.
    let report = engine.execute(&batch).unwrap();
    assert_eq!(report.exact_ranks, ranks.len());

    // The same accounting the `engine` bench binary reports — the shared
    // helper is the single definition of "collective rounds per query".
    let batched = measure_rounds(&mut engine, &batch, ExecutionMode::Batched).unwrap();
    let single = measure_rounds(&mut engine, &batch, ExecutionMode::PerQuery).unwrap();
    assert!(
        batched.collective_ops < single.collective_ops,
        "a batch of {r} rank queries must use strictly fewer collective rounds \
         ({}) than {r} single-rank calls ({})",
        batched.collective_ops,
        single.collective_ops
    );
    assert!(batched.rounds_per_query() < single.rounds_per_query());
    // The advantage must also show in message counts.
    assert!(batched.msgs_sent > 0 && batched.msgs_sent < single.msgs_sent);
}

#[test]
fn lifecycle_ingest_query_rebalance_delete_in_one_session() {
    let p = 4;
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).model(MachineModel::free()).imbalance_watermark(1.25))
            .unwrap();

    let mut oracle: Vec<u64> = Vec::new();

    // Balanced ingest.
    let a: Vec<u64> = (0..8000u64).map(|i| i.wrapping_mul(48271) % 65536).collect();
    oracle.extend(&a);
    assert!(!engine.ingest(a).unwrap().rebalanced);

    // Hot shard trips the watermark once.
    let b: Vec<u64> = (0..6000u64).map(|i| i.wrapping_mul(16807) % 65536).collect();
    oracle.extend(&b);
    let rep = engine.ingest_pinned(1, b).unwrap();
    assert!(rep.rebalanced);
    assert_eq!(engine.rebalances(), 1);
    assert!(engine.imbalance_ratio() <= 1.25);

    // Queries agree with the oracle after the move.
    oracle.sort_unstable();
    let n = oracle.len() as u64;
    let report = engine.execute(&[Query::Median, Query::TopK(5)]).unwrap();
    assert_eq!(report.answers[0], Answer::Value(oracle[((n - 1) / 2) as usize]));
    assert_eq!(report.answers[1], Answer::Top(oracle[..5].to_vec()));

    // Delete a value class entirely.
    let removed = engine.delete(&[42]).unwrap().elements;
    let expect_removed = oracle.iter().filter(|&&x| x == 42).count() as u64;
    assert_eq!(removed, expect_removed);
    oracle.retain(|&x| x != 42);
    let n = oracle.len() as u64;
    assert_eq!(engine.len(), n);
    let report = engine.execute(&[Query::quantile(0.5)]).unwrap();
    assert_eq!(report.answers[0], Answer::Value(oracle[quantile_rank(0.5, n) as usize]));
}

#[test]
fn approximate_quantiles_honor_their_tolerance_against_the_oracle() {
    let p = 8;
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).model(MachineModel::free()).sketch_capacity(2048))
            .unwrap();
    let data: Vec<u64> =
        cgselect::generate(Distribution::Gaussian, 120_000, p, 77).into_iter().flatten().collect();
    let mut oracle = data.clone();
    oracle.sort_unstable();
    engine.ingest(data).unwrap();

    let tol = 0.03;
    let qs = [0.25, 0.5, 0.75, 0.99];
    let batch: Vec<Query> = qs.iter().map(|&q| Query::quantile_within(q, tol)).collect();
    let report = engine.execute(&batch).unwrap();
    assert_eq!(report.sketch_answers, qs.len(), "all four must be sketch-served");
    for answer in &report.answers {
        let Answer::Approximate { value, target_rank, max_rank_error } = *answer else {
            panic!("expected approximate answer, got {answer:?}");
        };
        // True rank range of `value` in the oracle (duplicates allowed).
        let lo = oracle.partition_point(|&x| x < value) as u64;
        let hi = oracle.partition_point(|&x| x <= value) as u64;
        let err = if target_rank < lo {
            lo - target_rank
        } else if target_rank >= hi {
            target_rank - (hi - 1)
        } else {
            0
        };
        assert!(
            err <= max_rank_error,
            "true rank range [{lo}, {hi}) vs target {target_rank}: err {err} > {max_rank_error}"
        );
    }
}
