//! The per-shard halves of every engine operation, shared by all backends.
//!
//! Each function here is the body one virtual processor runs for one
//! engine verb (ingest, delete, rebalance, index build, delta merge, batch
//! execution). [`super::LocalSpmd`] invokes them from `Session::run`
//! closures; [`super::ChannelMp`] invokes them from each shard's long-lived
//! worker thread after decoding a command frame. Because both backends run
//! *this exact code* over the same [`Proc`] collectives, they produce
//! identical answers **and identical collective-round counts** — the
//! property `tests/backend_conformance.rs` pins down.

use cgselect_balance::{rebalance, Balancer};
use cgselect_core::{parallel_multi_select_windows, RankedWindow};
use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::{
    bucket_of, bucket_search_cmps, count_below_kernel, count_below_reference, partition_by_bounds,
    scalar_reference_mode, OpCount, SepBound,
};

use crate::index::{
    bucket_stats, build_shard_index, refined_bounds, splitters_from_samples, BucketStats,
    ShardIndex,
};
use crate::obs::{Phase, PhaseSpan};
use crate::sketch::EpsSketch;

use super::{BatchPlan, PhaseOps, ShardBatchOutcome, ShardDeletion};

/// Per-shard resident data plus its sketch and (optional) bucket index.
/// Lives wherever the backend keeps shard state: in the worker's
/// `ShardStore` for [`super::LocalSpmd`], owned directly by the shard's
/// worker thread for [`super::ChannelMp`].
pub(crate) struct Shard<T> {
    pub(crate) data: Vec<T>,
    pub(crate) sketch: EpsSketch<T>,
    pub(crate) index: Option<ShardIndex<T>>,
}

/// The empty shard every backend installs at construction. The sketch is
/// deterministic (no RNG), so every rank builds an identical empty state —
/// no per-rank seed decorrelation needed anymore.
pub(crate) fn init_shard<T: Key>(sketch_capacity: usize) -> Shard<T> {
    Shard { data: Vec::new(), sketch: EpsSketch::new(sketch_capacity), index: None }
}

/// Ingest: appends this shard's chunk past the indexed prefix (so the new
/// elements *are* the delta run), maintains the sketch incrementally, and
/// returns the shard's new size.
pub(crate) fn ingest_shard<T: Key>(proc: &mut Proc, shard: &mut Shard<T>, mine: Vec<T>) -> u64 {
    proc.charge_ops(mine.len() as u64);
    shard.data.reserve(mine.len());
    for x in mine {
        shard.sketch.offer(x);
        shard.data.push(x);
    }
    shard.data.len() as u64
}

/// Delete: one compacting pass removing every occurrence of the (sorted,
/// deduplicated) values, maintaining the bucket index in place. Every
/// binary-search comparison and element move is counted, matching how the
/// selection kernels charge their measured work.
pub(crate) fn delete_shard<T: Key>(
    proc: &mut Proc,
    shard: &mut Shard<T>,
    sorted: &[T],
) -> ShardDeletion {
    let Shard { data, sketch, index } = shard;
    let before = data.len();
    let mut cmps = 0u64;
    let mut moves = 0u64;
    let mut write = 0usize;
    let mut removed: Vec<u64> =
        index.as_ref().map(|idx| vec![0; idx.num_buckets() + 1]).unwrap_or_default();
    match index {
        Some(idx) => {
            let delta_start = idx.delta_start();
            let nb = idx.num_buckets();
            let mut b = 0usize;
            for read in 0..before {
                let bucket = if read >= delta_start {
                    nb
                } else {
                    while read >= idx.offsets[b + 1] {
                        b += 1;
                    }
                    b
                };
                let x = data[read];
                if binary_search_counting(sorted, &x, &mut cmps) {
                    removed[bucket] += 1;
                } else {
                    if write != read {
                        data[write] = x;
                        moves += 1;
                    }
                    write += 1;
                }
            }
            data.truncate(write);
            let mut shifted = 0usize;
            for (i, &gone) in removed[..nb].iter().enumerate() {
                shifted += gone as usize;
                idx.offsets[i + 1] -= shifted;
            }
        }
        None => {
            for read in 0..before {
                let x = data[read];
                if !binary_search_counting(sorted, &x, &mut cmps) {
                    if write != read {
                        data[write] = x;
                        moves += 1;
                    }
                    write += 1;
                }
            }
            data.truncate(write);
        }
    }
    proc.charge_ops(cmps + moves);
    if write != before {
        sketch.rebuild(data);
        proc.charge_ops(data.len() as u64);
    }
    ShardDeletion { remaining: data.len() as u64, removed }
}

/// Rebalance: runs the configured balancer over the shard data (dropping
/// the bucket index, whose splitters a rebalance invalidates), rebuilds the
/// sketch, and returns the shard's new size.
pub(crate) fn rebalance_shard<T: Key>(
    proc: &mut Proc,
    shard: &mut Shard<T>,
    balancer: Balancer,
) -> u64 {
    shard.index = None;
    rebalance(balancer, proc, &mut shard.data);
    shard.sketch.rebuild(&shard.data);
    proc.charge_ops(shard.data.len() as u64);
    shard.data.len() as u64
}

/// Index (re)build: the shards pool their sample sketches through one
/// collective, derive the identical splitter vector, partition their data
/// (delta run included) and report the shared splitters plus the
/// per-bucket summary for the host's cached global histogram (the host
/// mirrors the splitters so it can classify delta elements and replay
/// refinement without a collective).
pub(crate) fn build_index_shard<T: Key>(
    proc: &mut Proc,
    shard: &mut Shard<T>,
    nb: usize,
) -> (Vec<SepBound<T>>, BucketStats<T>) {
    // Sample source: evenly rank-spaced quantile points drawn from the
    // resident ε-sketch (maintained on ingest), so the pooled splitters
    // inherit the sketch's deterministic rank spread; a strided data
    // sample when sketches are disabled.
    let want = (4 * nb).max(1);
    let mut samples: Vec<T> = shard.sketch.quantile_points(want);
    if samples.is_empty() {
        let stride = (shard.data.len() / want).max(1);
        samples = shard.data.iter().copied().step_by(stride).take(want).collect();
    }
    proc.charge_ops(samples.len() as u64);
    let mut pool: Vec<T> = proc.all_gatherv(samples).into_iter().flatten().collect();
    let m = pool.len() as u64;
    pool.sort_unstable();
    proc.charge_ops(m * (1 + m.max(2).ilog2() as u64));
    let bounds = splitters_from_samples(&pool, nb);
    let mut ops = OpCount::new();
    let (idx, stats) = build_shard_index(&mut shard.data, bounds.clone(), &mut ops);
    proc.charge_ops(ops.total() + shard.data.len() as u64);
    shard.index = Some(idx);
    (bounds, stats)
}

/// Delta merge: partitions the delta run by the shared splitters and
/// rebuilds the flat storage with each bucket's delta members appended,
/// returning the delta's per-bucket summary for the host cache.
pub(crate) fn merge_delta_shard<T: Key>(proc: &mut Proc, shard: &mut Shard<T>) -> BucketStats<T> {
    let Shard { data, index, .. } = shard;
    let idx = index.as_mut().expect("delta merge requires a shard index");
    let delta_start = idx.delta_start();
    let total_len = data.len();
    let mut ops = OpCount::new();
    let (indexed_part, delta_part) = data.split_at_mut(delta_start);
    let doff = partition_by_bounds(delta_part, &idx.bounds, &mut ops);
    let dstats = bucket_stats(delta_part, &doff);
    // Amortized reorganization: rebuild the flat storage with each bucket's
    // delta members appended to it.
    let nb = idx.num_buckets();
    let mut merged = Vec::with_capacity(total_len);
    let mut new_offsets = Vec::with_capacity(nb + 1);
    new_offsets.push(0);
    for b in 0..nb {
        merged.extend_from_slice(&indexed_part[idx.offsets[b]..idx.offsets[b + 1]]);
        merged.extend_from_slice(&delta_part[doff[b]..doff[b + 1]]);
        new_offsets.push(merged.len());
    }
    proc.charge_ops(ops.total() + merged.len() as u64);
    *data = merged;
    idx.offsets = new_offsets;
    dstats
}

/// Slices shorter than this are never worth fanning out over scoped
/// threads: the spawn/join overhead of a scope dwarfs the scan itself.
const PAR_SCAN_MIN: usize = 1 << 15;

/// The local prefix count of one value probe over a plain slice, with
/// measured comparisons. Dispatches to the branchless counting kernel —
/// fanned out over `scan_threads` scoped workers in deterministic
/// chunk order when the slice is large enough — or to the scalar
/// reference loop under `set_scalar_reference_mode`. Every path charges
/// exactly one comparison per element, so modeled ops never depend on the
/// kernel or the thread count.
fn count_admitted<T: Key>(
    data: &[T],
    value: T,
    inclusive: bool,
    cmps: &mut u64,
    scan_threads: usize,
) -> u64 {
    if scalar_reference_mode() {
        return count_below_reference(data, value, inclusive, cmps);
    }
    if scan_threads > 1 && data.len() >= PAR_SCAN_MIN {
        *cmps += data.len() as u64;
        let chunk = data.len().div_ceil(scan_threads);
        let partials = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(chunk)
                .map(|c| {
                    s.spawn(move || {
                        let mut uncharged = 0u64;
                        count_below_kernel(c, value, inclusive, &mut uncharged)
                    })
                })
                .collect();
            // Joined in spawn order: the reduction is a fixed left fold
            // over chunk partials, identical for every thread schedule.
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect::<Vec<u64>>()
        })
        .expect("scan scope failed");
        return partials.into_iter().sum();
    }
    count_below_kernel(data, value, inclusive, cmps)
}

/// The value-probe phase: local prefix counts for every probe — localized
/// to the probe's own bucket (plus the delta run) when the shard holds an
/// index, a full scan otherwise — then **one** vectorized Combine for the
/// whole probe batch. Runs *before* the multi-select phase, which permutes
/// the windows and refines the splitters.
fn count_probes_shard<T: Key>(
    proc: &mut Proc,
    shard: &Shard<T>,
    probes: &[(T, bool)],
    scan_threads: usize,
) -> Vec<u64> {
    if probes.is_empty() {
        return Vec::new();
    }
    let mut cmps = 0u64;
    let mut ops = OpCount::new();
    let local: Vec<u64> = match &shard.index {
        Some(idx) => {
            let delta_start = idx.delta_start();
            // Probe batches arrive sorted and deduplicated by value (the
            // planner builds them that way), so one forward merge against
            // the sorted bounds replaces a fresh O(log B) binary search per
            // probe: O(P + B) total. The charge per probe stays exactly
            // what `bucket_of` would have measured (`bucket_search_cmps`
            // is grid-pinned to it), so modeled ops are unchanged. The
            // per-probe search survives as the reference baseline and as
            // the fallback for unsorted batches.
            let merge = !scalar_reference_mode() && probes.windows(2).all(|w| w[0].0 <= w[1].0);
            let mut next = 0usize;
            probes
                .iter()
                .map(|&(v, inclusive)| {
                    // Every element of a bucket below `b` is strictly below
                    // the probe value, every element above is strictly
                    // above: only bucket `b` itself (and the unindexed
                    // delta run) needs scanning.
                    let b = if merge {
                        // First bound admitting `v`; monotone in `v`, so the
                        // cursor never rewinds across the sorted batch.
                        while next < idx.bounds.len() && !idx.bounds[next].admits(&v) {
                            next += 1;
                        }
                        ops.cmps += bucket_search_cmps(idx.bounds.len());
                        next
                    } else {
                        bucket_of(&idx.bounds, &v, &mut ops)
                    };
                    idx.offsets[b] as u64
                        + count_admitted(
                            &shard.data[idx.offsets[b]..idx.offsets[b + 1]],
                            v,
                            inclusive,
                            &mut cmps,
                            scan_threads,
                        )
                        + count_admitted(
                            &shard.data[delta_start..],
                            v,
                            inclusive,
                            &mut cmps,
                            scan_threads,
                        )
                })
                .collect()
        }
        None => probes
            .iter()
            .map(|&(v, inclusive)| {
                count_admitted(&shard.data, v, inclusive, &mut cmps, scan_threads)
            })
            .collect(),
    };
    proc.charge_ops(ops.total() + cmps);
    proc.combine(local, |a, b| a.into_iter().zip(b).map(|(x, y)| x + y).collect::<Vec<u64>>())
}

/// Batch execution: the whole per-shard half of [`crate::Engine::run`]
/// — the vectorized value-probe Combine, delta localization, borrowed
/// candidate windows, the lockstep multi-select, and answer refinement.
/// (Sketch-served answers are computed host-side off the global ε-sketch
/// and never reach the backend; the sketch phase bracket survives only so
/// the span schema stays stable, always at zero collectives.) The measured
/// [`cgselect_runtime::CommStats`] delta, per-phase collective-op deltas
/// and virtual-time makespan come back in the outcome.
pub(crate) fn execute_shard<T: Key>(
    proc: &mut Proc,
    shard: &mut Shard<T>,
    plan: &BatchPlan<T>,
    scan_threads: usize,
) -> ShardBatchOutcome<T> {
    let n_exact = plan.exact_ranks.len();
    let run_full = !plan.use_index && n_exact > 0;
    let delta_total = plan.delta_total;
    // Span measurement rides on snapshots that were already taken for the
    // per-phase op deltas; the begin/end brackets charge no time and no
    // collectives, so execution with spans on is indistinguishable — in
    // answers, comm counts, and makespan — from execution with spans off.
    let observe = plan.trace.is_some();

    // Synchronize clocks so the elapsed virtual time is a makespan.
    proc.barrier();
    let comm0 = proc.comm_stats();
    let t0 = proc.now();

    // Phase 1: value probes — one Combine round for all of them together.
    if observe {
        proc.phase_begin(Phase::Probes.as_str());
    }
    let probe_counts = count_probes_shard(proc, shard, &plan.value_probes, scan_threads);
    if observe {
        proc.phase_end(Phase::Probes.as_str());
    }
    let comm_after_probes = proc.comm_stats();
    let t_after_probes = proc.now();
    let ops_after_probes = comm_after_probes.collective_ops;

    if observe {
        proc.phase_begin(Phase::Exact.as_str());
    }

    let mut exact: Vec<Option<T>> = vec![None; n_exact];
    let mut refines: Vec<BucketStats<T>> = Vec::new();
    if plan.use_index && !plan.groups.is_empty() {
        let Shard { data, index, .. } = &mut *shard;
        let idx = index.as_mut().expect("indexed execution requires a shard index");
        let delta_start = idx.delta_start();
        let nb = idx.num_buckets();
        let (indexed_part, delta_part) = data.split_at_mut(delta_start);

        // Localize the delta run once per batch: partition it by the
        // shared splitters, then Combine the per-bucket delta counts
        // (one vectorized collective) so every group can fold in
        // exactly its in-range delta elements and rebase its ranks
        // by the delta mass below its window — instead of every
        // group cloning and re-partitioning the whole delta.
        let (doff, delta_prefix) = if delta_total > 0 {
            let mut ops = OpCount::new();
            let doff = partition_by_bounds(delta_part, &idx.bounds, &mut ops);
            proc.charge_ops(ops.total());
            let local: Vec<u64> = doff.windows(2).map(|w| (w[1] - w[0]) as u64).collect();
            let global = proc.combine(local, |a, b| {
                a.into_iter().zip(b).map(|(x, y)| x + y).collect::<Vec<u64>>()
            });
            let mut prefix = vec![0u64; nb + 1];
            for (b, c) in global.into_iter().enumerate() {
                prefix[b + 1] = prefix[b] + c;
            }
            (doff, prefix)
        } else {
            (vec![0; nb + 1], vec![0; nb + 1])
        };

        // Carve the disjoint candidate windows out of the indexed
        // prefix (borrowed, never cloned); each window additionally
        // folds in its slice of the (already localized) delta run.
        let mut windows: Vec<RankedWindow<'_, T>> = Vec::with_capacity(plan.groups.len());
        let mut rest = indexed_part;
        let mut consumed = 0usize;
        for group in plan.groups.iter() {
            let start = idx.offsets[group.lo] - consumed;
            let len = idx.offsets[group.hi + 1] - idx.offsets[group.lo];
            let (_skip, tail) = rest.split_at_mut(start);
            let (slice, tail) = tail.split_at_mut(len);
            rest = tail;
            consumed = idx.offsets[group.hi + 1];
            let extra = delta_part[doff[group.lo]..doff[group.hi + 1]].to_vec();
            proc.charge_ops(extra.len() as u64);
            // The host sized the window over the *whole* delta (it
            // only knows the global delta total); with the exact
            // per-bucket delta counts the subset narrows to the
            // window's own delta mass, and ranks shift down by the
            // delta strictly below the window.
            let delta_below = delta_prefix[group.lo];
            let delta_in = delta_prefix[group.hi + 1] - delta_below;
            windows.push(RankedWindow {
                slice,
                extra,
                n: group.n - delta_total + delta_in,
                ranks: group
                    .ranks
                    .iter()
                    .map(|&r| r - delta_below)
                    .zip(group.out.iter().copied())
                    .collect(),
            });
        }
        exact = parallel_multi_select_windows(proc, windows, n_exact, &plan.selection);

        // Refine each window by its answers (descending, so earlier
        // windows' bucket indices stay valid): the resolved values
        // become equality-class splitters, restoring the index the
        // in-place pass permuted and making repeated/nearby ranks
        // histogram-only next batch.
        let (indexed_part, _) = data.split_at_mut(delta_start);
        refines = vec![Vec::new(); plan.groups.len()];
        for (g, group) in plan.groups.iter().enumerate().rev() {
            let answers: Vec<T> =
                group.out.iter().map(|&slot| exact[slot].expect("group rank resolved")).collect();
            let lower = (group.lo > 0).then(|| idx.bounds[group.lo - 1]);
            let upper = (group.hi < idx.bounds.len()).then(|| idx.bounds[group.hi]);
            let new_bounds =
                refined_bounds(&idx.bounds[group.lo..group.hi], &answers, lower, upper);
            let base = idx.offsets[group.lo];
            let range = &mut indexed_part[base..idx.offsets[group.hi + 1]];
            let mut ops = OpCount::new();
            let local = partition_by_bounds(range, &new_bounds, &mut ops);
            proc.charge_ops(ops.total() + range.len() as u64);
            refines[g] = bucket_stats(range, &local);
            idx.bounds.splice(group.lo..group.hi, new_bounds);
            let internal: Vec<usize> =
                local[1..local.len() - 1].iter().map(|&o| base + o).collect();
            idx.offsets.splice(group.lo + 1..group.hi + 1, internal);
        }
    } else if run_full {
        // No index: resolve over the whole resident slice, still
        // borrowed in place — the pre-index full-shard clone is
        // gone on this path too.
        let pairs: Vec<(u64, usize)> =
            plan.exact_ranks.iter().enumerate().map(|(i, r)| (r, i)).collect();
        let window = RankedWindow {
            slice: &mut shard.data,
            extra: Vec::new(),
            n: plan.full_total,
            ranks: pairs,
        };
        exact = parallel_multi_select_windows(proc, vec![window], n_exact, &plan.selection);
    }

    // Probe-driven splitter refinement: every resolved value probe carves
    // its `(v, <)(v, ≤)` equality class into the shared splitters, exactly
    // like rank answers do — zero collectives, so a repeated (or standing)
    // CDF probe goes histogram-exact after its first resolution. The skip
    // test (class already carved) depends only on the shared bounds, so
    // every shard splices identically and stays in lockstep with the
    // host's mirrored splitter vector, which replays this loop verbatim.
    let mut probe_refines: Vec<BucketStats<T>> = Vec::new();
    if plan.use_index && !plan.value_probes.is_empty() {
        if let Some(idx) = shard.index.as_mut() {
            let delta_start = idx.delta_start();
            let (indexed_part, _) = shard.data.split_at_mut(delta_start);
            for &(v, _) in plan.value_probes.iter() {
                let mut ops = OpCount::new();
                let b = bucket_of(&idx.bounds, &v, &mut ops);
                let lower = (b > 0).then(|| idx.bounds[b - 1]);
                let upper = (b < idx.bounds.len()).then(|| idx.bounds[b]);
                let inserted = refined_bounds(&[], &[v], lower, upper);
                if inserted.is_empty() {
                    proc.charge_ops(ops.total());
                    continue;
                }
                let base = idx.offsets[b];
                let range = &mut indexed_part[base..idx.offsets[b + 1]];
                let local = partition_by_bounds(range, &inserted, &mut ops);
                proc.charge_ops(ops.total() + range.len() as u64);
                probe_refines.push(bucket_stats(range, &local));
                idx.bounds.splice(b..b, inserted);
                let internal: Vec<usize> =
                    local[1..local.len() - 1].iter().map(|&o| base + o).collect();
                idx.offsets.splice(b + 1..b + 1, internal);
            }
        }
    }

    if observe {
        proc.phase_end(Phase::Exact.as_str());
    }
    let comm_after_exact = proc.comm_stats();
    let t_after_exact = proc.now();
    let ops_after_exact = comm_after_exact.collective_ops;

    // Sketch-contract answers moved host-side (global ε-sketch, zero
    // collectives); the phase bracket stays so span-schema consumers see
    // the same three phases, with the sketch span pinned at zero ops.
    if observe {
        proc.phase_begin(Phase::Sketch.as_str());
        proc.phase_end(Phase::Sketch.as_str());
    }

    let comm_end = proc.comm_stats();
    let t_end = proc.now();
    let comm = comm_end.since(&comm0);
    let base = comm0.collective_ops;
    let spans = if observe {
        vec![
            PhaseSpan {
                phase: Phase::Probes,
                time: t_after_probes - t0,
                comm: comm_after_probes.since(&comm0),
            },
            PhaseSpan {
                phase: Phase::Exact,
                time: t_after_exact - t_after_probes,
                comm: comm_after_exact.since(&comm_after_probes),
            },
            PhaseSpan {
                phase: Phase::Sketch,
                time: t_end - t_after_exact,
                comm: comm_end.since(&comm_after_exact),
            },
        ]
    } else {
        Vec::new()
    };
    ShardBatchOutcome {
        exact,
        refines,
        probe_refines,
        probe_counts,
        phase_ops: PhaseOps {
            probes: ops_after_probes - base,
            exact: ops_after_exact - ops_after_probes,
            sketch: comm.collective_ops - (ops_after_exact - base),
        },
        comm,
        elapsed: t_end - t0,
        spans,
    }
}

/// Binary search that reports its measured comparisons (the delete path's
/// op accounting, matching the kernels' counted discipline — the same
/// counting-closure idiom as `cgselect_seqsel::bucket_of`).
fn binary_search_counting<T: Ord>(sorted: &[T], x: &T, cmps: &mut u64) -> bool {
    let i = sorted.partition_point(|v| {
        *cmps += 1;
        v < x
    });
    i < sorted.len() && {
        *cmps += 1;
        sorted[i] == *x
    }
}
