//! # cgselect-balance — dynamic data redistribution (paper §4)
//!
//! During parallel selection the surviving element counts drift apart
//! between processors (on sorted input, half the processors lose *all*
//! their data every iteration). This crate implements the paper's load
//! balancing algorithms, each of which redistributes a `Vec<T>` per
//! processor so that afterwards every processor holds `⌊n/p⌋` or `⌈n/p⌉`
//! elements:
//!
//! * [`order_maintaining`] — §4.1, prefix-based; **preserves the global
//!   order** of the data (processor-major concatenation order);
//! * [`modified_order_maintaining`] — Algorithm 5; drops the order
//!   guarantee, moves only the excess above each processor's target;
//! * [`dimension_exchange`] — Algorithm 6 (Cybenko); `log p` rounds of
//!   pairwise averaging across hypercube dimensions;
//! * [`global_exchange`] — Algorithm 7; like modified OMLB but pairs the
//!   largest sources with the largest sinks to reduce message count.
//!
//! As the paper notes, these are useful beyond selection for any problem
//! that needs dynamic redistribution with no constraint on which processor
//! gets which element (except `order_maintaining`, which keeps order).
//!
//! All strategies are wrapped in the runtime's `PHASE_LOAD_BALANCE` phase
//! so the experiment harness can report load-balancing time separately
//! (the paper's Figures 5 and 6).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dimension_exchange;
mod global_exchange;
mod omlb;
mod schedule;

pub use dimension_exchange::dimension_exchange;
pub use global_exchange::global_exchange;
pub use omlb::{modified_order_maintaining, order_maintaining};

use cgselect_runtime::{Key, Proc, PHASE_LOAD_BALANCE};

/// Which load balancing strategy a selection algorithm applies between
/// iterations (paper §5 evaluates all of them against `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Balancer {
    /// No balancing (the paper's best choice for randomized selection).
    #[default]
    None,
    /// Order-maintaining load balance (§4.1, unmodified).
    Omlb,
    /// Modified order-maintaining load balance (Algorithm 5) — the variant
    /// implemented by Bader & JáJá.
    ModOmlb,
    /// Dimension exchange (Algorithm 6).
    DimExchange,
    /// Global exchange (Algorithm 7).
    GlobalExchange,
}

impl Balancer {
    /// All concrete strategies (excluding `None`), for sweeps.
    pub const ALL_ACTIVE: [Balancer; 4] =
        [Balancer::Omlb, Balancer::ModOmlb, Balancer::DimExchange, Balancer::GlobalExchange];

    /// Short label used in experiment output (matches the paper's figure
    /// legends: N / O / D / G).
    pub fn label(&self) -> &'static str {
        match self {
            Balancer::None => "N",
            Balancer::Omlb => "O",
            Balancer::ModOmlb => "O*",
            Balancer::DimExchange => "D",
            Balancer::GlobalExchange => "G",
        }
    }

    /// Full name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Balancer::None => "none",
            Balancer::Omlb => "order-maintaining",
            Balancer::ModOmlb => "modified order-maintaining",
            Balancer::DimExchange => "dimension exchange",
            Balancer::GlobalExchange => "global exchange",
        }
    }
}

/// What a rebalancing operation did on *this* processor.
#[derive(Default, Clone, Copy, Debug, PartialEq)]
pub struct BalanceReport {
    /// Elements shipped out of this processor.
    pub elements_sent: u64,
    /// Elements received by this processor.
    pub elements_recv: u64,
    /// Data messages sent (count exchanges excluded).
    pub messages_sent: u64,
    /// Virtual seconds this processor spent in the operation.
    pub seconds: f64,
}

impl BalanceReport {
    /// Merges another report into this one (for accumulating across
    /// selection iterations).
    pub fn absorb(&mut self, other: BalanceReport) {
        self.elements_sent += other.elements_sent;
        self.elements_recv += other.elements_recv;
        self.messages_sent += other.messages_sent;
        self.seconds += other.seconds;
    }
}

/// Applies the chosen strategy to this processor's `data`, collectively
/// with all other processors (SPMD: every processor must call this with
/// the same `balancer`).
///
/// The call is recorded under the `PHASE_LOAD_BALANCE` phase on the
/// processor's virtual clock.
///
/// ```
/// use cgselect_balance::{rebalance, Balancer};
/// use cgselect_runtime::Machine;
///
/// // All 60 elements start on processor 0; afterwards everyone holds 20.
/// let sizes = Machine::new(3)
///     .run(|proc| {
///         let mut mine: Vec<u64> =
///             if proc.rank() == 0 { (0..60).collect() } else { Vec::new() };
///         rebalance(Balancer::GlobalExchange, proc, &mut mine);
///         mine.len()
///     })
///     .unwrap();
/// assert_eq!(sizes, vec![20, 20, 20]);
/// ```
pub fn rebalance<T: Key>(balancer: Balancer, proc: &mut Proc, data: &mut Vec<T>) -> BalanceReport {
    proc.phase_begin(PHASE_LOAD_BALANCE);
    let start = proc.now();
    let mut report = match balancer {
        Balancer::None => BalanceReport::default(),
        Balancer::Omlb => order_maintaining(proc, data),
        Balancer::ModOmlb => modified_order_maintaining(proc, data),
        Balancer::DimExchange => dimension_exchange(proc, data),
        Balancer::GlobalExchange => global_exchange(proc, data),
    };
    report.seconds = proc.now() - start;
    proc.phase_end(PHASE_LOAD_BALANCE);
    report
}

/// Per-processor target sizes: `⌊n/p⌋ + 1` for the first `n mod p`
/// processors, `⌊n/p⌋` for the rest (they sum exactly to `n`).
pub(crate) fn target_for(n: u64, p: usize, rank: usize) -> u64 {
    n / p as u64 + u64::from((rank as u64) < n % p as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_sum_to_n() {
        for p in 1..=9usize {
            for n in [0u64, 1, 5, 17, 100] {
                let sum: u64 = (0..p).map(|r| target_for(n, p, r)).sum();
                assert_eq!(sum, n, "n={n} p={p}");
                // Difference between any two targets is at most 1.
                let ts: Vec<u64> = (0..p).map(|r| target_for(n, p, r)).collect();
                let (mn, mx) = (ts.iter().min().unwrap(), ts.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> =
            [Balancer::None].iter().chain(Balancer::ALL_ACTIVE.iter()).map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
