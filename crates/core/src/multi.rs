//! Multi-rank selection: several order statistics in one pass.
//!
//! An extension beyond the paper: applications often need a whole set of
//! quantiles (p50/p90/p99/…) of the same distributed data. Running the
//! single-rank algorithm per quantile rescans the data `R` times; this
//! module partitions the data around shared random pivots and routes each
//! requested rank into its segment, so the expected total work is
//! `O((n/p)·(1 + log R))` plus the collective terms — the classic
//! multi-select recursion, parallelized with the paper's machinery
//! (shared-seed pivots, owner broadcast, Combine counts).
//!
//! Three entry points, cheapest last:
//!
//! * [`parallel_multi_select`] — the original owned-input form: consumes a
//!   local `Vec<T>` and computes the global population itself.
//! * [`parallel_multi_select_in`] — copy-free: partitions a **borrowed**
//!   `&mut [T]` in place (plus a small owned overflow vector), with the
//!   exact global population supplied by the caller — no per-call clone of
//!   resident data and no population collective.
//! * [`parallel_multi_select_windows`] — the engine's resident-bucket-index
//!   form: many pre-localized candidate windows resolved **in lockstep**.
//!   Every recursion round issues one vectorized prefix-sum, one vectorized
//!   owner broadcast and one vectorized count Combine *for all live
//!   segments together*, and all small-enough segments share a single
//!   gather/broadcast finish — so a batch of `R` windows costs
//!   `O(log(max window))` collective rounds, not `R` times that.

use cgselect_runtime::{Key, Proc, PHASE_FINISH};
use cgselect_seqsel::{
    floyd_rivest_multi_select, partition3, partition3_kernel, scalar_reference_mode, KernelRng,
    OpCount,
};

use crate::SelectionConfig;

/// One pre-localized candidate window handed to
/// [`parallel_multi_select_windows`]: a borrowed slice of this processor's
/// resident storage (partitioned in place, never copied), a small owned
/// overflow (e.g. a cloned unindexed delta run), the window's exact global
/// population, and the ranks to resolve inside it.
pub struct RankedWindow<'a, T> {
    /// Borrowed local elements of the window; permuted in place.
    pub slice: &'a mut [T],
    /// Small owned local overflow, consumed by the recursion.
    pub extra: Vec<T>,
    /// Exact global population of the window (over all processors).
    pub n: u64,
    /// `(rank within the window, output slot)` pairs, ranks `< n`.
    pub ranks: Vec<(u64, usize)>,
}

/// One live segment of the lockstep recursion. Segments split and shrink in
/// an order determined solely by global counts, so every processor tracks
/// the identical list (SPMD-safe).
struct Segment<'a, T> {
    slice: &'a mut [T],
    extra: Vec<T>,
    n: u64,
    ranks: Vec<(u64, usize)>,
}

impl<T> Segment<'_, T> {
    fn local_len(&self) -> u64 {
        (self.slice.len() + self.extra.len()) as u64
    }
}

/// Selects the elements at several global ranks of the distributed
/// multiset in one collective pass.
///
/// `ranks` may be in any order; the returned vector is aligned with it
/// (`result[i]` is the element of rank `ranks[i]`). Duplicated ranks are
/// allowed. Load balancing is not applied (segments shrink quickly and
/// the recursion re-partitions them anyway).
///
/// ```
/// use cgselect_core::{multi_select_on_machine, SelectionConfig};
/// use cgselect_runtime::MachineModel;
///
/// let parts: Vec<Vec<u64>> = vec![vec![30, 10], vec![20, 40, 0]];
/// let quartiles = multi_select_on_machine(
///     2,
///     MachineModel::free(),
///     &parts,
///     &[0, 2, 4],
///     &SelectionConfig::default(),
/// )
/// .unwrap();
/// assert_eq!(quartiles, vec![0, 20, 40]);
/// ```
///
/// # Panics
/// Panics if the distributed set is empty or any rank is out of range
/// (collectively — every processor fails identically).
pub fn parallel_multi_select<T: Key>(
    proc: &mut Proc,
    data: Vec<T>,
    ranks: &[u64],
    cfg: &SelectionConfig,
) -> Vec<T> {
    let n0 = proc.combine(data.len() as u64, |a, b| a + b);
    assert!(n0 > 0, "multi-select on an empty distributed set");
    parallel_multi_select_in(proc, &mut [], data, n0, ranks, cfg)
}

/// The borrowed, copy-free multi-select: resolves `ranks` over the
/// distributed multiset formed by every processor's `local` slice plus its
/// owned `extra` vector, whose exact global population `n` the caller
/// supplies (so no population collective is paid). `local` is partitioned
/// **in place** — on return its elements are permuted (multiset unchanged).
///
/// # Panics
/// Panics if `n == 0` while ranks are requested, or any rank is `>= n`.
pub fn parallel_multi_select_in<T: Key>(
    proc: &mut Proc,
    local: &mut [T],
    extra: Vec<T>,
    n: u64,
    ranks: &[u64],
    cfg: &SelectionConfig,
) -> Vec<T> {
    if ranks.is_empty() {
        return Vec::new();
    }
    assert!(n > 0, "multi-select on an empty distributed set");
    let pairs = ranks.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
    let window = RankedWindow { slice: local, extra, n, ranks: pairs };
    let out = parallel_multi_select_windows(proc, vec![window], ranks.len(), cfg);
    out.into_iter().map(|v| v.expect("every requested rank must have been resolved")).collect()
}

/// Lockstep multi-select over many pre-localized windows (see the module
/// docs): resolves every window's ranks into a `Vec<Option<T>>` of length
/// `out_len`, indexed by the windows' output slots. Slots not named by any
/// window remain `None`.
///
/// Windows must be constructed identically on every processor (same count,
/// same `n`s, same ranks — the local slices naturally differ); output slots
/// must not repeat across windows.
///
/// # Panics
/// Panics if a window has ranks but `n == 0`, or a rank `>= n`.
pub fn parallel_multi_select_windows<T: Key>(
    proc: &mut Proc,
    windows: Vec<RankedWindow<'_, T>>,
    out_len: usize,
    cfg: &SelectionConfig,
) -> Vec<Option<T>> {
    cfg.validate();
    let mut out: Vec<Option<T>> = vec![None; out_len];
    let mut shared_rng = KernelRng::new(cfg.seed ^ 0x6D75_6C74); // "mult"
    let threshold = cfg.threshold(proc.nprocs());

    let mut active: Vec<Segment<'_, T>> = Vec::with_capacity(windows.len());
    for w in windows {
        if w.ranks.is_empty() {
            continue;
        }
        assert!(w.n > 0, "multi-select window with ranks but no elements");
        for &(r, _) in &w.ranks {
            assert!(r < w.n, "rank {r} out of range for a window of {} elements", w.n);
        }
        let mut ranks = w.ranks;
        ranks.sort_unstable();
        active.push(Segment { slice: w.slice, extra: w.extra, n: w.n, ranks });
    }

    let mut rounds = 0u32;
    while !active.is_empty() {
        rounds += 1;
        assert!(
            rounds <= cfg.max_iters,
            "multi-select exceeded {} rounds (likely a bug)",
            cfg.max_iters
        );

        // Segments at or below the sequential threshold finish together in
        // one shared gather + broadcast; the rest take a vectorized
        // partition round. The split is driven by global counts only, so it
        // is identical on every processor.
        let (finish, mut big): (Vec<_>, Vec<_>) = active.drain(..).partition(|s| s.n <= threshold);
        if !finish.is_empty() {
            solve_finishers(proc, finish, &mut out);
        }
        if big.is_empty() {
            continue;
        }

        // One shared pivot per live segment (identical stream everywhere),
        // located via a single vectorized exclusive prefix sum and published
        // via a single vectorized owner broadcast.
        let pivot_idx: Vec<u64> = big.iter().map(|s| shared_rng.below(s.n)).collect();
        let lens: Vec<u64> = big.iter().map(Segment::local_len).collect();
        let incl = proc
            .scan(lens.clone(), |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect::<Vec<u64>>());
        let owners: Vec<(Option<T>, u64)> = big
            .iter()
            .zip(&lens)
            .zip(&incl)
            .zip(&pivot_idx)
            .map(|(((seg, &len), &inc), &idx)| {
                let before = inc - len;
                let mine = (before <= idx && idx < before + len).then(|| {
                    let at = (idx - before) as usize;
                    if at < seg.slice.len() {
                        seg.slice[at]
                    } else {
                        seg.extra[at - seg.slice.len()]
                    }
                });
                (mine, u64::from(mine.is_some()))
            })
            .collect();
        let merged = proc.combine(owners, |a, b| {
            a.into_iter().zip(b).map(|((va, ca), (vb, cb))| (va.or(vb), ca + cb)).collect()
        });
        let pivots: Vec<T> = merged
            .into_iter()
            .map(|(v, c)| {
                assert_eq!(c, 1, "each segment pivot needs exactly one owner, found {c}");
                v.expect("owner count is 1, value must exist")
            })
            .collect();

        // Local three-way partitions, then one vectorized count Combine.
        // The branchless kernel reproduces `partition3`'s permutation and
        // charges exactly (pivot choices index physical positions, so the
        // permutation is part of the cross-backend contract); the scalar
        // original stays reachable as the wall-clock reference baseline.
        let reference = scalar_reference_mode();
        let mut ops = OpCount::new();
        let p3 = |data: &mut [T], pivot: T, ops: &mut OpCount| {
            if reference {
                partition3(data, pivot, pivot, ops)
            } else {
                partition3_kernel(data, pivot, pivot, ops)
            }
        };
        let splits: Vec<(usize, usize, usize, usize)> = big
            .iter_mut()
            .zip(&pivots)
            .map(|(seg, &pivot)| {
                let (a1, b1) = p3(seg.slice, pivot, &mut ops);
                let (a2, b2) = p3(&mut seg.extra, pivot, &mut ops);
                (a1, b1, a2, b2)
            })
            .collect();
        proc.charge_ops(ops.total());
        let local_counts: Vec<(u64, u64)> = splits
            .iter()
            .map(|&(a1, b1, a2, b2)| ((a1 + a2) as u64, ((b1 - a1) + (b2 - a2)) as u64))
            .collect();
        let totals = proc.combine(local_counts, |a, b| {
            a.into_iter().zip(b).map(|((l1, e1), (l2, e2))| (l1 + l2, e1 + e2)).collect()
        });

        // Split every segment into its surviving children, in segment order
        // (left before right) — deterministic across processors.
        let mut extra_moves = 0u64;
        for ((seg, &(a1, b1, a2, b2)), (&pivot, &(c_lt, c_eq))) in
            big.into_iter().zip(&splits).zip(pivots.iter().zip(&totals))
        {
            let mut left_ranks = Vec::new();
            let mut right_ranks = Vec::new();
            for (r, i) in seg.ranks {
                if r < c_lt {
                    left_ranks.push((r, i));
                } else if r < c_lt + c_eq {
                    out[i] = Some(pivot);
                } else {
                    right_ranks.push((r - c_lt - c_eq, i));
                }
            }
            // The borrowed slice splits in place (no copies); only the
            // owned overflow pays for its split.
            let (left_slice, rest) = seg.slice.split_at_mut(a1);
            let (_eq_slice, right_slice) = rest.split_at_mut(b1 - a1);
            let mut extra = seg.extra;
            let right_extra = extra.split_off(b2);
            extra.truncate(a2);
            extra_moves += (extra.len() + right_extra.len()) as u64;
            if !left_ranks.is_empty() {
                active.push(Segment { slice: left_slice, extra, n: c_lt, ranks: left_ranks });
            }
            if !right_ranks.is_empty() {
                active.push(Segment {
                    slice: right_slice,
                    extra: right_extra,
                    n: seg.n - c_lt - c_eq,
                    ranks: right_ranks,
                });
            }
        }
        proc.charge_ops(extra_moves);
    }
    out
}

/// Finishes all small segments of one round together: a single flat gather
/// on P0 — untagged when only one segment finishes (the common
/// single-window path, half the modeled payload), `(segment, element)`
/// pairs otherwise — one sort-and-read-off per segment, and a single
/// broadcast of every answer. Both branches issue the identical collective
/// sequence, and `segs.len()` is globally agreed, so SPMD order holds.
fn solve_finishers<T: Key>(proc: &mut Proc, segs: Vec<Segment<'_, T>>, out: &mut [Option<T>]) {
    proc.phase_begin(PHASE_FINISH);
    let gathered: Option<Vec<Vec<T>>> = if segs.len() == 1 {
        let seg = &segs[0];
        let mut mine = seg.slice.to_vec();
        mine.extend_from_slice(&seg.extra);
        proc.charge_ops(mine.len() as u64);
        proc.gather_flat(0, mine).map(|all| vec![all])
    } else {
        let mut mine: Vec<(u32, T)> = Vec::new();
        for (i, seg) in segs.iter().enumerate() {
            let tag = i as u32;
            mine.extend(seg.slice.iter().map(|&x| (tag, x)));
            mine.extend(seg.extra.iter().map(|&x| (tag, x)));
        }
        proc.charge_ops(mine.len() as u64);
        proc.gather_flat(0, mine).map(|all| {
            let mut per: Vec<Vec<T>> = (0..segs.len()).map(|_| Vec::new()).collect();
            for (tag, x) in all {
                per[tag as usize].push(x);
            }
            per
        })
    };
    let answers: Option<Vec<T>> = gathered.map(|mut per| {
        let mut res = Vec::new();
        let mut local = OpCount::new();
        let reference = scalar_reference_mode();
        for (seg, bucket) in segs.iter().zip(&mut per) {
            local.moves += bucket.len() as u64;
            debug_assert_eq!(
                bucket.len() as u64,
                seg.n,
                "caller-supplied window population disagrees with the gathered count"
            );
            debug_assert!(
                seg.ranks.windows(2).all(|w| w[0].0 <= w[1].0),
                "finisher ranks must stay ascending through segment splits"
            );
            // Floyd–Rivest finisher: R successive selects cost expected
            // O(R·n) comparisons against the sort's n·log2(n), so for a
            // sparse rank set in a sizeable window (2R < log2 n, with the
            // factor 2 as noise margin) the gathered bucket is finished by
            // selection instead of sorting. Charges are measured either
            // way; the scalar-reference switch pins the sort path as the
            // pre-kernel baseline.
            let distinct = 1 + seg.ranks.windows(2).filter(|w| w[0].0 != w[1].0).count() as u64;
            let use_fr =
                !reference && bucket.len() > 1 && 2 * distinct < u64::from(bucket.len().ilog2());
            if use_fr {
                let ranks: Vec<usize> = seg.ranks.iter().map(|&(r, _)| r as usize).collect();
                res.extend(floyd_rivest_multi_select(bucket, &ranks, &mut local));
            } else {
                bucket.sort_unstable_by(|a, b| {
                    local.cmps += 1;
                    a.cmp(b)
                });
                res.extend(seg.ranks.iter().map(|&(r, _)| bucket[r as usize]));
            }
        }
        proc.charge_ops(local.total());
        res
    });
    let answers = proc.broadcast(0, answers);
    proc.phase_end(PHASE_FINISH);
    let mut it = answers.into_iter();
    for seg in segs {
        for (_, slot) in seg.ranks {
            out[slot] = Some(it.next().expect("one answer per requested rank"));
        }
    }
}

/// Whole-machine convenience for [`parallel_multi_select`].
pub fn multi_select_on_machine<T: Key>(
    p: usize,
    model: cgselect_runtime::MachineModel,
    parts: &[Vec<T>],
    ranks: &[u64],
    cfg: &SelectionConfig,
) -> Result<Vec<T>, cgselect_runtime::RunError> {
    assert_eq!(parts.len(), p, "need exactly one data vector per processor");
    let outs = cgselect_runtime::Machine::with_model(p, model)
        .run(|proc| parallel_multi_select(proc, parts[proc.rank()].clone(), ranks, cfg))?;
    Ok(outs.into_iter().next().expect("p >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::MachineModel;

    fn oracle(parts: &[Vec<u64>], ranks: &[u64]) -> Vec<u64> {
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        ranks.iter().map(|&r| all[r as usize]).collect()
    }

    fn cfg() -> SelectionConfig {
        SelectionConfig { min_sequential: 32, ..SelectionConfig::with_seed(5) }
    }

    #[test]
    fn selects_multiple_ranks() {
        let p = 4;
        let parts: Vec<Vec<u64>> =
            (0..p).map(|r| (0..200).map(|i| (i * p + r) as u64 * 7 % 1000).collect()).collect();
        let ranks = [0u64, 100, 400, 799];
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn unsorted_and_duplicate_rank_requests() {
        let p = 3;
        let parts: Vec<Vec<u64>> =
            (0..p).map(|r| (0..100).map(|i| (i + r) as u64).collect()).collect();
        let ranks = [250u64, 0, 250, 42, 299];
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn heavy_duplicates() {
        let p = 4;
        let parts: Vec<Vec<u64>> = (0..p).map(|_| [1u64, 2, 2, 2, 3].repeat(40)).collect();
        let n: usize = parts.iter().map(Vec::len).sum();
        let ranks: Vec<u64> = (0..10).map(|i| (i * n / 10) as u64).collect();
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn empty_rank_list() {
        let parts: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let got = multi_select_on_machine(2, MachineModel::free(), &parts, &[], &cfg()).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn matches_single_select() {
        let p = 4;
        let parts = (0..p)
            .map(|r| (0..300).map(|i| ((i * 37 + r * 11) % 500) as u64).collect())
            .collect::<Vec<_>>();
        let k = 600;
        let multi = multi_select_on_machine(p, MachineModel::free(), &parts, &[k], &cfg()).unwrap();
        let single = crate::select_on_machine(
            p,
            MachineModel::free(),
            &parts,
            k,
            crate::Algorithm::Randomized,
            &cfg(),
        )
        .unwrap();
        assert_eq!(multi[0], single.value);
    }

    #[test]
    fn many_ranks_at_scale() {
        let p = 8;
        let n = 80_000usize;
        let parts: Vec<Vec<u64>> = (0..p)
            .map(|r| {
                (0..n / p)
                    .map(|i| ((i * p + r) as u64).wrapping_mul(0x9E3779B9) % 1_000_000)
                    .collect()
            })
            .collect();
        let ranks: Vec<u64> = (1..20).map(|i| (i * n / 20) as u64).collect();
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn out_of_range_rank_fails() {
        let parts: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let err =
            multi_select_on_machine(2, MachineModel::free(), &parts, &[5], &cfg()).unwrap_err();
        assert!(format!("{err}").contains("out of range"));
    }

    #[test]
    fn borrowed_form_matches_oracle_and_preserves_the_multiset() {
        // The engine's shape: a borrowed resident slice per processor plus a
        // small owned delta clone; answers must match the oracle over the
        // union, and the borrowed storage must come back permuted-not-lost.
        let p = 4;
        let parts: Vec<Vec<u64>> =
            (0..p).map(|r| (0..500).map(|i| ((i * 13 + r * 7) % 911) as u64).collect()).collect();
        let extras: Vec<Vec<u64>> =
            (0..p).map(|r| (0..20).map(|i| (1000 + i * 3 + r as u64) % 911).collect()).collect();
        let union: Vec<Vec<u64>> =
            (0..p).map(|r| parts[r].iter().chain(extras[r].iter()).copied().collect()).collect();
        let n: u64 = union.iter().map(|v| v.len() as u64).sum();
        let ranks = [0u64, 17, n / 2, n - 1];
        let expect = oracle(&union, &ranks);

        let outs = cgselect_runtime::Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut local = parts[proc.rank()].clone();
                let got = parallel_multi_select_in(
                    proc,
                    &mut local,
                    extras[proc.rank()].clone(),
                    n,
                    &ranks,
                    &cfg(),
                );
                (got, local)
            })
            .unwrap();
        for (rank, (got, local)) in outs.into_iter().enumerate() {
            assert_eq!(got, expect);
            // In-place partitioning permutes but never loses elements.
            let mut a = local;
            a.sort_unstable();
            let mut b = parts[rank].clone();
            b.sort_unstable();
            assert_eq!(a, b, "rank {rank} slice multiset changed");
        }
    }

    #[test]
    fn lockstep_windows_resolve_disjoint_ranges_with_shared_rounds() {
        // Two disjoint windows per processor (low half / high half of a
        // global 0..1000 range, dealt round-robin) resolved in one lockstep
        // pass; collective rounds must be far below two sequential passes.
        let p = 4;
        let per = 250usize; // per processor, per window
        let low: Vec<Vec<u64>> =
            (0..p).map(|r| (0..per).map(|i| ((i * p + r) * 2) as u64 % 1000).collect()).collect();
        let high: Vec<Vec<u64>> = (0..p)
            .map(|r| (0..per).map(|i| 1000 + ((i * p + r) * 3) as u64 % 1000).collect())
            .collect();
        let n_low: u64 = (p * per) as u64;
        let n_high: u64 = (p * per) as u64;
        let mut all_low: Vec<u64> = low.iter().flatten().copied().collect();
        let mut all_high: Vec<u64> = high.iter().flatten().copied().collect();
        all_low.sort_unstable();
        all_high.sort_unstable();

        let outs = cgselect_runtime::Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut a = low[proc.rank()].clone();
                let mut b = high[proc.rank()].clone();
                let windows = vec![
                    RankedWindow {
                        slice: &mut a,
                        extra: Vec::new(),
                        n: n_low,
                        ranks: vec![(0, 0), (n_low / 2, 1)],
                    },
                    RankedWindow {
                        slice: &mut b,
                        extra: Vec::new(),
                        n: n_high,
                        ranks: vec![(n_high / 3, 2), (n_high - 1, 3)],
                    },
                ];
                let c0 = proc.comm_stats().collective_ops;
                let got = parallel_multi_select_windows(proc, windows, 4, &cfg());
                (got, proc.comm_stats().collective_ops - c0)
            })
            .unwrap();
        for (got, _) in &outs {
            assert_eq!(got[0], Some(all_low[0]));
            assert_eq!(got[1], Some(all_low[(n_low / 2) as usize]));
            assert_eq!(got[2], Some(all_high[(n_high / 3) as usize]));
            assert_eq!(got[3], Some(all_high[(n_high - 1) as usize]));
        }
        // Lockstep sharing: two windows together must cost well under two
        // independent passes (each pass would pay its own rounds).
        let shared = outs[0].1;
        let single = cgselect_runtime::Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut a = low[proc.rank()].clone();
                let c0 = proc.comm_stats().collective_ops;
                let _ = parallel_multi_select_in(
                    proc,
                    &mut a,
                    Vec::new(),
                    n_low,
                    &[0, n_low / 2],
                    &cfg(),
                );
                proc.comm_stats().collective_ops - c0
            })
            .unwrap()[0];
        assert!(
            shared < 2 * single,
            "two lockstep windows ({shared} collective ops) must beat two passes (2×{single})"
        );
    }

    #[test]
    fn reference_mode_changes_neither_answers_nor_rounds() {
        // The wall-clock contract: branchless kernels and the Floyd–Rivest
        // finisher may change only wall time — answers and the collective
        // sequence must be bit-identical to the scalar reference path. A
        // sparse rank set over a large window drives the FR finisher;
        // the dense set drives the sort path; both must agree.
        let p = 4;
        let parts: Vec<Vec<u64>> = (0..p)
            .map(|r| (0..2000).map(|i| ((i * 29 + r * 13) % 7919) as u64).collect())
            .collect();
        let n = (p * 2000) as u64;
        let rank_sets: Vec<Vec<u64>> =
            vec![vec![n / 2], vec![0, n / 4, n / 2, n - 1], (0..40).map(|i| i * n / 40).collect()];
        for ranks in rank_sets {
            let run = |reference: bool| {
                cgselect_seqsel::set_scalar_reference_mode(reference);
                let out = cgselect_runtime::Machine::with_model(p, MachineModel::free())
                    .run(|proc| {
                        let c0 = proc.comm_stats().collective_ops;
                        let got =
                            parallel_multi_select(proc, parts[proc.rank()].clone(), &ranks, &cfg());
                        (got, proc.comm_stats().collective_ops - c0)
                    })
                    .unwrap();
                cgselect_seqsel::set_scalar_reference_mode(false);
                out.into_iter().next().expect("p >= 1")
            };
            let (kernel_ans, kernel_rounds) = run(false);
            let (ref_ans, ref_rounds) = run(true);
            assert_eq!(kernel_ans, ref_ans, "answers must not depend on the kernel path");
            assert_eq!(kernel_rounds, ref_rounds, "rounds must not depend on the kernel path");
            assert_eq!(kernel_ans, oracle(&parts, &ranks));
        }
    }

    #[test]
    fn windows_with_empty_rank_lists_are_skipped() {
        let outs = cgselect_runtime::Machine::with_model(2, MachineModel::free())
            .run(|proc| {
                let mut data = vec![proc.rank() as u64 * 2, proc.rank() as u64 * 2 + 1];
                let windows =
                    vec![RankedWindow { slice: &mut data, extra: Vec::new(), n: 4, ranks: vec![] }];
                parallel_multi_select_windows(proc, windows, 0, &cfg())
            })
            .unwrap();
        assert!(outs.iter().all(Vec::is_empty));
    }
}
