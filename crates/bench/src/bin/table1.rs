//! Regenerates the paper's table1 (see `cgselect_bench::figs`).
fn main() {
    let quick = cgselect_bench::quick_mode();
    cgselect_bench::figs::table1(quick);
}
