//! Algorithm 4 — Fast randomized parallel selection.

use cgselect_balance::{rebalance, BalanceReport};
use cgselect_runtime::{Key, Proc, PHASE_SORT};
use cgselect_seqsel::{partition3, KernelRng, OpCount};
use cgselect_sort::sorted_ranks_of;

use crate::common::{apply_step, combine_zone_counts, finish, Narrow};
use crate::randomized::random_pivot_step;
use crate::{AlgoResult, Algorithm, SelectionConfig};

/// Runs fast randomized selection (paper Algorithm 4, after Rajasekaran et
/// al.): `O(log log n)` iterations w.h.p.
///
/// Each iteration samples ~`n^ε` keys (ε = 0.6 per the paper's tuning),
/// parallel-sorts the sample, brackets the target between the sample
/// elements of ranks `m ± δ` (`m = k·|S|/n`, `δ = √(|S|·ln n)`), three-way
/// partitions the data against the bracket `[k₁, k₂]` and keeps the zone
/// containing the target. With high probability that zone is the middle
/// one, whose expected size shrinks super-geometrically. When the target
/// falls outside the bracket (an *unsuccessful* iteration), the paper's
/// modification still discards everything on the far side rather than
/// retrying the sample.
///
/// A degeneracy guard handles bracket-covers-everything rounds on heavily
/// duplicated data: if no element would be discarded, the round falls back
/// to one shared-pivot discard step (Algorithm 3's body), which always
/// makes progress.
pub(crate) fn run<T: Key>(
    proc: &mut Proc,
    mut data: Vec<T>,
    k0: u64,
    n0: u64,
    cfg: &SelectionConfig,
) -> AlgoResult<T> {
    let p = proc.nprocs();
    let threshold = cfg.threshold(p);
    let kernel = cfg.kernel_for(Algorithm::FastRandomized);
    let mut shared_rng = KernelRng::new(cfg.seed);
    let mut local_rng = KernelRng::derive(cfg.seed, proc.rank() as u64 + 1);

    let mut nr = Narrow { n: n0, k: k0 };
    let mut iterations = 0u32;
    let mut unsuccessful = 0u32;
    let mut balance = BalanceReport::default();
    let mut early: Option<T> = None;
    let mut survivors = Vec::new();

    while nr.n > threshold {
        survivors.push(nr.n);
        iterations += 1;
        assert!(
            iterations <= cfg.max_iters,
            "fast randomized selection exceeded {} iterations (n={}, k={})",
            cfg.max_iters,
            nr.n,
            nr.k
        );

        // Step 1: draw a local sample of expected size nᵢ·n^(ε−1).
        let ni = data.len() as u64;
        let frac = (nr.n as f64).powf(cfg.epsilon - 1.0);
        let si = if ni == 0 { 0 } else { ((ni as f64 * frac).ceil() as u64).min(ni) };
        for j in 0..si {
            let r = j + local_rng.below(ni - j);
            data.swap(j as usize, r as usize);
        }
        proc.charge_ops(3 * si);
        let sample: Vec<T> = data[..si as usize].to_vec();
        proc.charge_ops(si);

        // Steps 2–4: parallel-sort the sample; fetch k₁ and k₂.
        let s_total = proc.combine(si, |a, b| a + b);
        debug_assert!(s_total > 0, "sample cannot be empty while n > 0");
        let m = (nr.k as f64) * (s_total as f64) / (nr.n as f64);
        let delta = cfg.delta_coeff * ((s_total as f64) * (nr.n as f64).ln()).sqrt();
        let max_rank = s_total - 1;
        let k1 = (m - delta).floor().clamp(0.0, max_rank as f64) as u64;
        let k2 = (m + delta).ceil().clamp(0.0, max_rank as f64) as u64;
        proc.phase_begin(PHASE_SORT);
        let vs = sorted_ranks_of(proc, cfg.sample_sort, sample, &[k1, k2]);
        proc.phase_end(PHASE_SORT);
        let (v1, v2) = (vs[0], vs[1]);
        debug_assert!(v1 <= v2);

        // Step 5: three-way partition into < k₁ | [k₁, k₂] | > k₂.
        let mut ops = OpCount::new();
        let (a, b) = partition3(&mut data, v1, v2, &mut ops);
        proc.charge_ops(ops.total());

        // Steps 6–7: combine the zone counts.
        let counts = combine_zone_counts(proc, a, b, data.len());

        // Step 8: narrow (with the degeneracy guard).
        if counts.1 == nr.n {
            if v1 == v2 {
                // The whole remaining set equals v1.
                early = Some(v1);
                break;
            }
            // Bracket swallowed everything but spans distinct values: fall
            // back to one guaranteed-progress pivot-discard round.
            if let Some(v) = random_pivot_step(proc, &mut data, &mut nr, &mut shared_rng) {
                early = Some(v);
                break;
            }
        } else {
            let (step, successful) = nr.decide_bracket(counts, a, b);
            if !successful {
                unsuccessful += 1;
            }
            apply_step(proc, &mut data, &step);
        }

        // Optional load balancing between iterations.
        balance.absorb(rebalance(cfg.balancer, proc, &mut data));
    }

    // Steps 9–10: gather survivors, solve sequentially, broadcast.
    let value = match early {
        Some(v) => v,
        None => finish(proc, data, nr.k, kernel, &mut local_rng),
    };
    AlgoResult { value, iterations, unsuccessful, balance, survivors }
}
