//! Query API v2: typed requests, accuracy contracts, and provenance-carrying
//! outcomes.
//!
//! The paper's selection recursion is built on one collective primitive —
//! counting the elements below a pivot — yet the engine's original surface
//! ([`crate::Query`]) only exposed the *forward* direction (rank → element).
//! This module adds the typed v2 surface:
//!
//! * **[`Request`]** — a [`QueryKind`] plus an explicit [`Accuracy`]
//!   contract. New kinds cover the *inverse* direction the resident bucket
//!   index and the host-global ε-sketch answer near-free:
//!   [`QueryKind::RankOf`] (value → rank, a CDF point) and
//!   [`QueryKind::CountBetween`] (value interval → population count), plus
//!   [`QueryKind::Min`] / [`QueryKind::Max`] and the multi-quantile
//!   [`QueryKind::Quantiles`].
//! * **[`Accuracy`]** — what the caller will accept: [`Accuracy::Exact`]
//!   (the default), [`Accuracy::WithinRank`] (a fractional rank-error
//!   tolerance the deterministic ε-sketch serves host-side, with a
//!   *provable* error guarantee, whenever its resident bound fits
//!   `⌈t·n⌉`), or [`Accuracy::HistogramOk`] (bucket-resolution answers
//!   straight from the cached histogram, zero collectives). Serving
//!   *better* than the contract is always allowed — an exact answer
//!   satisfies every contract.
//! * **[`Outcome`]** — the answer ([`Response`]) paired with **provenance**
//!   ([`Served`]: which subsystem produced it) and a per-query
//!   collective-op [`CostAttribution`].
//!
//! [`crate::Engine::run`] executes a batch of requests;
//! [`crate::Engine::execute`] is now a thin compatibility shim that lowers
//! the old [`crate::Query`] enum onto this surface.

use crate::obs::{BatchSpan, TraceId};
use crate::query::quantile_rank;

/// What a v2 query asks for (the kind half of a [`Request`]).
///
/// Rank-direction kinds (`Rank`, `Quantile`, `Quantiles`, `Median`, `Min`,
/// `Max`, `TopK`) map ranks to elements; value-direction kinds (`RankOf`,
/// `CountBetween`) map elements to ranks/counts — the inverse of the same
/// order statistics, and exactly the collective primitive (count-below-pivot)
/// the paper's recursion is built on.
///
/// ```
/// use cgselect_engine::{QueryKind, Request};
///
/// let forward = Request::<u64>::quantile(0.99);
/// assert_eq!(forward.kind, QueryKind::Quantile(0.99));
/// let inverse = Request::rank_of(42u64);
/// assert_eq!(inverse.kind, QueryKind::RankOf(42));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum QueryKind<T> {
    /// The element of this 0-based global rank.
    Rank(u64),
    /// The element nearest to quantile `q ∈ [0, 1]`.
    Quantile(f64),
    /// The elements nearest to each quantile, aligned with the input.
    Quantiles(Vec<f64>),
    /// The median (0-based rank `(n−1)/2`, the paper's ⌈n/2⌉-th smallest).
    Median,
    /// The smallest resident element (rank 0).
    Min,
    /// The largest resident element (rank `n−1`).
    Max,
    /// The `k` smallest resident elements, ascending.
    TopK(u64),
    /// The 0-based rank the value would occupy: the number of resident
    /// elements strictly less than it (a CDF point). The value itself need
    /// not be resident.
    RankOf(T),
    /// The number of resident elements inside the interval.
    CountBetween(Bounds<T>),
}

impl<T> QueryKind<T> {
    /// Stable lower-case label of the kind (for spans, logs, metrics).
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Rank(_) => "rank",
            QueryKind::Quantile(_) => "quantile",
            QueryKind::Quantiles(_) => "quantiles",
            QueryKind::Median => "median",
            QueryKind::Min => "min",
            QueryKind::Max => "max",
            QueryKind::TopK(_) => "top_k",
            QueryKind::RankOf(_) => "rank_of",
            QueryKind::CountBetween(_) => "count_between",
        }
    }
}

/// A value interval for [`QueryKind::CountBetween`], built from the
/// constructors below; either side may be unbounded.
///
/// ```
/// use cgselect_engine::Bounds;
///
/// let b = Bounds::closed(10u64, 20);   // 10 ≤ x ≤ 20
/// let o = Bounds::open(10u64, 20);     // 10 <  x <  20
/// let lo = Bounds::at_least(10u64);    // 10 ≤ x
/// assert_ne!(b, o);
/// assert_eq!(lo, Bounds::at_least(10u64));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds<T> {
    /// Lower endpoint as `(value, inclusive)`; `None` = unbounded below.
    pub lo: Option<(T, bool)>,
    /// Upper endpoint as `(value, inclusive)`; `None` = unbounded above.
    pub hi: Option<(T, bool)>,
}

impl<T: Ord + Copy> Bounds<T> {
    /// `lo ≤ x ≤ hi`.
    pub fn closed(lo: T, hi: T) -> Self {
        Bounds { lo: Some((lo, true)), hi: Some((hi, true)) }
    }

    /// `lo < x < hi`.
    pub fn open(lo: T, hi: T) -> Self {
        Bounds { lo: Some((lo, false)), hi: Some((hi, false)) }
    }

    /// `x ≤ v`.
    pub fn at_most(v: T) -> Self {
        Bounds { lo: None, hi: Some((v, true)) }
    }

    /// `x < v`.
    pub fn below(v: T) -> Self {
        Bounds { lo: None, hi: Some((v, false)) }
    }

    /// `x ≥ v`.
    pub fn at_least(v: T) -> Self {
        Bounds { lo: Some((v, true)), hi: None }
    }

    /// `x > v`.
    pub fn above(v: T) -> Self {
        Bounds { lo: Some((v, false)), hi: None }
    }

    /// True when no value can satisfy the interval (e.g. `lo > hi`, or
    /// `lo == hi` with an exclusive endpoint). Empty intervals are valid
    /// queries and count zero.
    pub fn is_empty(&self) -> bool {
        match (self.lo, self.hi) {
            (Some((lo, li)), Some((hi, ui))) => lo > hi || (lo == hi && !(li && ui)),
            _ => false,
        }
    }
}

/// The accuracy contract half of a [`Request`]: the *loosest* answer the
/// caller will accept. The engine may always serve better (an exact answer
/// satisfies every contract); the [`Outcome`]'s [`Served`] provenance and
/// the [`Response`]'s error bound report what was actually delivered.
///
/// ```
/// use cgselect_engine::{Accuracy, Request};
///
/// assert_eq!(Request::<u64>::median().accuracy, Accuracy::Exact);
/// assert_eq!(
///     Request::<u64>::median().within_rank(0.01).accuracy,
///     Accuracy::WithinRank(0.01)
/// );
/// assert_eq!(Request::<u64>::median().histogram_ok().accuracy, Accuracy::HistogramOk);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Accuracy {
    /// The answer must be exact (the default).
    #[default]
    Exact,
    /// Rank error up to `fraction · n` is acceptable. When the resident
    /// deterministic ε-sketch's provable bound fits the budget, the query
    /// is served host-side with **zero collectives**, and the answer
    /// carries the sketch's guarantee (never larger than `⌈fraction·n⌉`)
    /// as its reported maximum error; otherwise it falls back to exact.
    WithinRank(f64),
    /// A bucket-resolution answer straight from the cached histogram is
    /// acceptable: zero element scans, zero collectives, with the error
    /// bound reported in the [`Response`]. Falls back to exact when no
    /// index is resident.
    HistogramOk,
}

/// One typed v2 query: a [`QueryKind`] plus its [`Accuracy`] contract.
///
/// ```
/// use cgselect_engine::{Bounds, Request};
///
/// let exact = Request::<u64>::quantile(0.99);
/// let loose = Request::<u64>::quantile(0.99).within_rank(0.05);
/// let inverse = Request::rank_of(12_345u64).histogram_ok();
/// let range = Request::count_between(Bounds::closed(10u64, 20));
/// assert_ne!(exact, loose);
/// assert_ne!(inverse, range);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Request<T> {
    /// What is being asked.
    pub kind: QueryKind<T>,
    /// The loosest acceptable answer.
    pub accuracy: Accuracy,
    /// Request-scoped trace identity. `None` (the default) lets the engine
    /// assign one when observability is on; the frontend stamps admitted
    /// requests so spans tie back to submission.
    pub trace: Option<TraceId>,
}

impl<T> Request<T> {
    /// An exact request of the given kind.
    pub fn new(kind: QueryKind<T>) -> Self {
        Request { kind, accuracy: Accuracy::Exact, trace: None }
    }

    /// The element of 0-based rank `k`.
    pub fn rank(k: u64) -> Self {
        Request::new(QueryKind::Rank(k))
    }

    /// The element nearest quantile `q`.
    pub fn quantile(q: f64) -> Self {
        Request::new(QueryKind::Quantile(q))
    }

    /// The elements nearest each quantile, answered together.
    pub fn quantiles(qs: impl IntoIterator<Item = f64>) -> Self {
        Request::new(QueryKind::Quantiles(qs.into_iter().collect()))
    }

    /// The median.
    pub fn median() -> Self {
        Request::new(QueryKind::Median)
    }

    /// The smallest resident element.
    pub fn min() -> Self {
        Request::new(QueryKind::Min)
    }

    /// The largest resident element.
    pub fn max() -> Self {
        Request::new(QueryKind::Max)
    }

    /// The `k` smallest resident elements.
    pub fn top_k(k: u64) -> Self {
        Request::new(QueryKind::TopK(k))
    }

    /// The rank the value would occupy (inverse query; see
    /// [`QueryKind::RankOf`]).
    pub fn rank_of(value: T) -> Self {
        Request::new(QueryKind::RankOf(value))
    }

    /// The resident population of the interval (inverse query; see
    /// [`QueryKind::CountBetween`]).
    pub fn count_between(bounds: Bounds<T>) -> Self {
        Request::new(QueryKind::CountBetween(bounds))
    }

    /// Loosens the contract to [`Accuracy::WithinRank`]`(fraction)`.
    pub fn within_rank(mut self, fraction: f64) -> Self {
        self.accuracy = Accuracy::WithinRank(fraction);
        self
    }

    /// Loosens the contract to [`Accuracy::HistogramOk`].
    pub fn histogram_ok(mut self) -> Self {
        self.accuracy = Accuracy::HistogramOk;
        self
    }

    /// Attaches an explicit trace ID (normally stamped at frontend
    /// admission via [`TraceId::next`]).
    pub fn traced(mut self, id: TraceId) -> Self {
        self.trace = Some(id);
        self
    }
}

/// The answer half of an [`Outcome`].
///
/// ```
/// use cgselect_engine::Response;
///
/// let r: Response<u64> = Response::Count { count: 41, max_error: 0 };
/// assert_eq!(r.count(), Some(41));
/// assert_eq!(r.max_error(), 0); // exact
/// let r = Response::Element(7u64);
/// assert_eq!(r.element(), Some(7));
/// assert_eq!(r.count(), None);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Response<T> {
    /// A single exact element (`Rank`, `Quantile`, `Median`, `Min`, `Max`).
    Element(T),
    /// Several exact elements: ascending for `TopK`, aligned with the
    /// requested quantiles for `Quantiles`.
    Elements(Vec<T>),
    /// A rank or population count (`RankOf`, `CountBetween`), with the
    /// guaranteed absolute error bound — `0` means exact.
    Count {
        /// The (possibly estimated) count.
        count: u64,
        /// `|count − true count| ≤ max_error`, guaranteed.
        max_error: u64,
    },
    /// An estimated element whose true rank is **guaranteed** to be within
    /// `max_rank_error` of `target_rank` (sketch- or histogram-served
    /// rank-direction queries under a loosened contract).
    Approximate {
        /// The estimated element.
        value: T,
        /// The exact query's 0-based target rank.
        target_rank: u64,
        /// The guaranteed absolute rank-error bound: the ε-sketch's (or
        /// histogram bracket's) provable error, at most the contract's
        /// `⌈tolerance·n⌉`.
        max_rank_error: u64,
    },
}

impl<T> Response<T> {
    /// Borrows the scalar element, if this is an `Element` or `Approximate`
    /// response (no `Copy` bound — works for any future key type).
    pub fn as_element(&self) -> Option<&T> {
        match self {
            Response::Element(v) | Response::Approximate { value: v, .. } => Some(v),
            _ => None,
        }
    }

    /// Consumes the response into its scalar element, if any.
    pub fn into_element(self) -> Option<T> {
        match self {
            Response::Element(v) | Response::Approximate { value: v, .. } => Some(v),
            _ => None,
        }
    }

    /// The count, if this is a `Count` response.
    pub fn count(&self) -> Option<u64> {
        match self {
            Response::Count { count, .. } => Some(*count),
            _ => None,
        }
    }

    /// The element list, if this is an `Elements` response.
    pub fn elements(&self) -> Option<&[T]> {
        match self {
            Response::Elements(v) => Some(v),
            _ => None,
        }
    }

    /// The guaranteed absolute error bound of this response: `0` for exact
    /// responses, the promised rank/count error otherwise.
    pub fn max_error(&self) -> u64 {
        match self {
            Response::Element(_) | Response::Elements(_) => 0,
            Response::Count { max_error, .. } => *max_error,
            Response::Approximate { max_rank_error, .. } => *max_rank_error,
        }
    }
}

impl<T: Copy> Response<T> {
    /// The scalar element by value (kept for `Copy` keys; prefer
    /// [`as_element`](Self::as_element) in generic code).
    pub fn element(&self) -> Option<T> {
        self.as_element().copied()
    }
}

/// Which subsystem produced an answer — the provenance half of an
/// [`Outcome`], ordered cheapest first.
///
/// ```
/// use cgselect_engine::Served;
///
/// assert!(Served::Histogram < Served::Sketch);
/// assert!(Served::Index < Served::Scan);
/// assert_eq!(Served::Histogram.as_str(), "histogram");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Served {
    /// Resolved from the cached per-bucket histogram alone: zero element
    /// scans, zero collectives.
    Histogram,
    /// Served from the host-global deterministic ε-sketch under a
    /// `WithinRank` contract: zero collectives, zero scans, with a
    /// provable rank-error guarantee.
    Sketch,
    /// Resolved through the resident bucket index: localized to candidate
    /// windows, borrowed in place.
    Index,
    /// Resolved by scanning the full resident data (index disabled or not
    /// yet built).
    Scan,
}

impl Served {
    /// Stable lower-case label (for logs, CSV, bench output).
    pub fn as_str(self) -> &'static str {
        match self {
            Served::Histogram => "histogram",
            Served::Sketch => "sketch",
            Served::Index => "index",
            Served::Scan => "scan",
        }
    }
}

impl std::fmt::Display for Served {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The share of a batch's measured cost attributed to one query.
///
/// Collectives are *shared* by construction — one Combine round serves every
/// value probe of the batch, one multi-select pass serves every rank — so
/// per-query attribution divides each phase's measured collective ops over
/// the queries that used the phase, proportional to the slots they
/// contributed. Sums over a batch's outcomes reproduce the batch totals.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostAttribution {
    /// Attributed collective operations (per-processor counts, like
    /// [`crate::BatchReport::collective_ops`]). `0.0` for histogram-served
    /// answers.
    pub collective_ops: f64,
}

/// Which state of the resident multiset an answer reflects — the freshness
/// stamp every [`Outcome`] carries.
///
/// `version` is the engine's mutation version: it increments on every
/// ingest/delete (and on membership changes that alter the multiset), so
/// two outcomes with equal versions were computed against the identical
/// resident data. Standing-query updates (see [`crate::StandingUpdate`])
/// lean on this: a subscriber can tell a genuinely new answer from a
/// re-delivery, and correlate updates across independent subscriptions.
///
/// ```
/// use cgselect_engine::{Engine, EngineConfig, Request};
///
/// let mut engine: Engine<u64> = Engine::new(EngineConfig::new(2)).unwrap();
/// engine.ingest((0..100u64).collect()).unwrap();
/// let a = engine.run(&[Request::median()]).unwrap().outcomes.remove(0);
/// engine.ingest(vec![7u64]).unwrap();
/// let b = engine.run(&[Request::median()]).unwrap().outcomes.remove(0);
/// assert!(b.freshness.version > a.freshness.version);
/// assert_eq!(b.freshness.elements, 101);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Freshness {
    /// The engine's mutation version when the answer was computed.
    pub version: u64,
    /// The resident population the answer reflects.
    pub elements: u64,
}

/// One request's result: the answer, its provenance, its attributed cost,
/// and the freshness stamp tying it to a resident-data version.
///
/// ```
/// use cgselect_engine::{Engine, EngineConfig, Request, Served};
///
/// let mut engine: Engine<u64> = Engine::new(EngineConfig::new(2)).unwrap();
/// engine.ingest((0..100u64).collect()).unwrap();
/// let outcome = engine.run(&[Request::rank_of(40)]).unwrap().outcomes.remove(0);
/// assert_eq!(outcome.response.count(), Some(40));
/// assert!(outcome.served <= Served::Scan);
/// assert!(outcome.cost.collective_ops >= 0.0);
/// assert_eq!(outcome.freshness.elements, 100);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome<T> {
    /// The answer.
    pub response: Response<T>,
    /// Which subsystem produced it.
    pub served: Served,
    /// This query's share of the batch's measured collective work.
    pub cost: CostAttribution,
    /// Which resident-data state the answer reflects.
    pub freshness: Freshness,
}

/// What one [`crate::Engine::run`] batch did and cost.
///
/// ```
/// use cgselect_engine::{Engine, EngineConfig, Request};
///
/// let mut engine: Engine<u64> = Engine::new(EngineConfig::new(2)).unwrap();
/// engine.ingest((0..100u64).collect()).unwrap();
/// let report = engine.run(&[Request::median(), Request::rank(10)]).unwrap();
/// assert_eq!(report.outcomes.len(), 2);
/// assert_eq!(report.exact_ranks, 2);
/// // Per-query attribution reproduces the batch total.
/// let sum: f64 = report.outcomes.iter().map(|o| o.cost.collective_ops).sum();
/// assert!((sum - report.collective_ops as f64).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct RunReport<T> {
    /// Per-request outcomes, aligned with the submitted batch.
    pub outcomes: Vec<Outcome<T>>,
    /// Communication the batch moved, summed over all processors.
    pub comm: cgselect_runtime::CommStats,
    /// Collective operations the batch started, per processor.
    pub collective_ops: u64,
    /// Virtual-time makespan of the batch under the engine's cost model.
    pub makespan: f64,
    /// Distinct ranks the coalesced multi-select pass resolved.
    pub exact_ranks: usize,
    /// Queries served from the sketches.
    pub sketch_answers: usize,
    /// Rank slots and value probes answered from the cached histogram alone.
    pub histogram_answers: usize,
    /// Value probes resolved by the collective `count_below` op (one
    /// Combine round for all of them together).
    pub value_probes: usize,
    /// Fraction of the resident population in the unindexed delta run when
    /// the batch executed.
    pub delta_occupancy: f64,
    /// The intra-shard scan fan-out the engine ran with
    /// ([`crate::EngineConfig::scan_threads`]); part of the cost
    /// attribution so SLO lines from differently-tuned engines stay
    /// comparable. Modeled ops and answers never depend on it — only wall
    /// time does.
    pub scan_threads: usize,
    /// The batch's span tree — `Some` only when the engine runs with
    /// observability enabled (`EngineConfig::observe`).
    pub span: Option<BatchSpan>,
}

/// Maps a quantile list to its target ranks over `n` elements (the
/// multi-quantile analogue of [`quantile_rank`]).
pub(crate) fn quantile_ranks(qs: &[f64], n: u64) -> Vec<u64> {
    qs.iter().map(|&q| quantile_rank(q, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_constructors_and_emptiness() {
        assert!(!Bounds::closed(5u64, 5).is_empty());
        assert!(Bounds::open(5u64, 5).is_empty());
        assert!(Bounds::closed(6u64, 5).is_empty());
        assert!(!Bounds::at_most(0u64).is_empty());
        assert!(!Bounds::at_least(u64::MAX).is_empty());
        assert_eq!(Bounds::above(3u64).lo, Some((3, false)));
        assert_eq!(Bounds::below(3u64).hi, Some((3, false)));
    }

    #[test]
    fn request_builders_set_kind_and_accuracy() {
        let r = Request::<u64>::quantile(0.5).within_rank(0.01);
        assert_eq!(r.kind, QueryKind::Quantile(0.5));
        assert_eq!(r.accuracy, Accuracy::WithinRank(0.01));
        let r = Request::rank_of(7u64).histogram_ok();
        assert_eq!(r.kind, QueryKind::RankOf(7));
        assert_eq!(r.accuracy, Accuracy::HistogramOk);
        assert_eq!(Request::<u64>::median().accuracy, Accuracy::Exact);
    }

    #[test]
    fn response_accessors_work_without_copy() {
        // A non-Copy key type: the borrow-returning accessors must compile
        // and work (the satellite generalization of `Answer::value`).
        #[derive(Debug, PartialEq)]
        struct NoCopy(u64);
        let r = Response::Element(NoCopy(9));
        assert_eq!(r.as_element(), Some(&NoCopy(9)));
        assert_eq!(r.into_element(), Some(NoCopy(9)));
        let r: Response<NoCopy> = Response::Count { count: 4, max_error: 1 };
        assert_eq!(r.count(), Some(4));
        assert_eq!(r.max_error(), 1);
        assert_eq!(r.as_element(), None);
    }

    #[test]
    fn served_is_ordered_cheapest_first() {
        assert!(Served::Histogram < Served::Sketch);
        assert!(Served::Sketch < Served::Index);
        assert!(Served::Index < Served::Scan);
        assert_eq!(Served::Histogram.to_string(), "histogram");
    }
}
