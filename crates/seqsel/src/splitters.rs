//! Shared-splitter bucket boundaries for distributed bucket indexes.
//!
//! The paper's bucket structure ([`crate::Buckets`]) is *local*: every
//! processor derives its own separators from its own data. A distributed
//! engine that wants a *global* per-bucket histogram needs the opposite —
//! one splitter vector agreed by all processors, against which each shard
//! partitions its local data so that "bucket `i`" means the same value
//! range everywhere (Nowicki's regular-sampling multiple selection works
//! this way).
//!
//! A splitter here is a [`SepBound`] — an upper boundary that is either
//! *inclusive* (`x ≤ v`) or *exclusive* (`x < v`). The exclusive flavour is
//! what lets a refinement isolate an exact equality class: inserting the
//! pair `(v, exclusive), (v, inclusive)` around a resolved answer `v`
//! carves the buckets `(…, v)`, `[v, v]`, `(v, …)` — and a bucket that is
//! a pure equality class can later be answered from counts alone, with no
//! element scan. Because both bounds mention only the shared value `v`,
//! every shard splits identically and the global histogram stays valid.

use crate::ops::OpCount;

/// An upper bucket boundary: admits `x ≤ value` (inclusive) or `x < value`
/// (exclusive).
///
/// Bounds are totally ordered by `(value, inclusive)` with the exclusive
/// bound *first*, so a sorted bound vector `s₀ < s₁ < …` defines buckets
/// `B₀ = {x : s₀ admits x}`, `Bᵢ = {x : sᵢ admits x, sᵢ₋₁ does not}`, plus
/// a final bucket for everything no bound admits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SepBound<T> {
    /// The boundary value.
    pub value: T,
    /// `false`: the bucket below this bound excludes `value` itself.
    pub inclusive: bool,
}

impl<T: Copy + Ord> SepBound<T> {
    /// An inclusive boundary (`x ≤ value` falls below it).
    pub fn le(value: T) -> Self {
        SepBound { value, inclusive: true }
    }

    /// An exclusive boundary (`x < value` falls below it).
    pub fn lt(value: T) -> Self {
        SepBound { value, inclusive: false }
    }

    /// True if `x` belongs at or below this boundary.
    #[inline]
    pub fn admits(&self, x: &T) -> bool {
        if self.inclusive {
            *x <= self.value
        } else {
            *x < self.value
        }
    }
}

/// The index of the bucket `x` belongs to under sorted `bounds` (buckets
/// number `0 ..= bounds.len()`): the first bound admitting `x`, or
/// `bounds.len()` when none does. `O(log B)` comparisons, charged to `ops`.
pub fn bucket_of<T: Copy + Ord>(bounds: &[SepBound<T>], x: &T, ops: &mut OpCount) -> usize {
    let mut cmps = 0u64;
    let idx = bounds.partition_point(|b| {
        cmps += 1;
        !b.admits(x)
    });
    ops.cmps += cmps.max(1);
    idx
}

/// Partitions `data` in place by a single bound: `[admitted | rejected]`,
/// returning the number of admitted elements. Same scan discipline (and
/// measured costs) as [`crate::partition_le`].
fn partition_bound<T: Copy + Ord>(data: &mut [T], bound: SepBound<T>, ops: &mut OpCount) -> usize {
    let mut i = 0usize;
    let mut j = data.len();
    loop {
        while i < j {
            ops.cmps += 1;
            if bound.admits(&data[i]) {
                i += 1;
            } else {
                break;
            }
        }
        while i < j {
            ops.cmps += 1;
            if !bound.admits(&data[j - 1]) {
                j -= 1;
            } else {
                break;
            }
        }
        if i >= j {
            return i;
        }
        data.swap(i, j - 1);
        ops.moves += 3;
        i += 1;
        j -= 1;
    }
}

/// Multiway in-place partition of `data` by strictly increasing `bounds`:
/// afterwards the elements of bucket `i` occupy `data[ret[i]..ret[i+1]]`.
///
/// Returns the bucket offsets — `bounds.len() + 2` entries, first `0`, last
/// `data.len()`, non-decreasing (empty buckets are allowed, unlike the
/// local [`crate::Buckets`] structure). Recursive halving over the bound
/// vector: `O(n log B)` measured comparisons.
///
/// # Panics
/// Panics (debug builds) if `bounds` is not strictly increasing.
pub fn partition_by_bounds<T: Copy + Ord>(
    data: &mut [T],
    bounds: &[SepBound<T>],
    ops: &mut OpCount,
) -> Vec<usize> {
    debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
    let mut offsets = vec![0usize; bounds.len() + 2];
    *offsets.last_mut().expect("non-empty") = data.len();
    rec(data, 0, bounds, 0, &mut offsets, ops);
    offsets
}

fn rec<T: Copy + Ord>(
    data: &mut [T],
    base: usize,
    bounds: &[SepBound<T>],
    first_bucket: usize,
    offsets: &mut [usize],
    ops: &mut OpCount,
) {
    if bounds.is_empty() {
        return;
    }
    let mid = bounds.len() / 2;
    let cut = partition_bound(data, bounds[mid], ops);
    // Everything in data[..cut] falls at or below bounds[mid]; the bucket
    // starting after bounds[mid] therefore begins at base + cut.
    offsets[first_bucket + mid + 1] = base + cut;
    let (lo, hi) = data.split_at_mut(cut);
    rec(lo, base, &bounds[..mid], first_bucket, offsets, ops);
    rec(hi, base + cut, &bounds[mid + 1..], first_bucket + mid + 1, offsets, ops);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_bucket(bounds: &[SepBound<u64>], x: u64) -> usize {
        bounds.iter().position(|b| b.admits(&x)).unwrap_or(bounds.len())
    }

    #[test]
    fn bound_ordering_puts_exclusive_first() {
        assert!(SepBound::lt(5u64) < SepBound::le(5u64));
        assert!(SepBound::le(4u64) < SepBound::lt(5u64));
        assert!(!SepBound::lt(5u64).admits(&5));
        assert!(SepBound::le(5u64).admits(&5));
        assert!(SepBound::lt(5u64).admits(&4));
    }

    #[test]
    fn bucket_of_matches_linear_scan() {
        let bounds =
            vec![SepBound::le(10u64), SepBound::lt(20), SepBound::le(20), SepBound::le(35)];
        let mut ops = OpCount::new();
        for x in [0u64, 10, 11, 19, 20, 21, 35, 36, 1000] {
            assert_eq!(bucket_of(&bounds, &x, &mut ops), oracle_bucket(&bounds, x), "x={x}");
        }
        assert!(ops.cmps > 0);
    }

    #[test]
    fn eq_class_isolation_via_paired_bounds() {
        // (v, exclusive) + (v, inclusive) carve out the pure equality class.
        let bounds = vec![SepBound::lt(7u64), SepBound::le(7)];
        let mut data = vec![9u64, 7, 1, 7, 3, 7, 12, 0, 7];
        let mut ops = OpCount::new();
        let off = partition_by_bounds(&mut data, &bounds, &mut ops);
        assert_eq!(off, vec![0, 3, 7, 9]);
        assert!(data[off[0]..off[1]].iter().all(|&x| x < 7));
        assert_eq!(&data[off[1]..off[2]], &[7, 7, 7, 7]);
        assert!(data[off[2]..].iter().all(|&x| x > 7));
    }

    #[test]
    fn multiway_partition_matches_bucket_of() {
        let bounds: Vec<SepBound<u64>> =
            vec![SepBound::le(100), SepBound::le(250), SepBound::lt(600), SepBound::le(600)];
        let mut rng = crate::KernelRng::new(5);
        let mut data: Vec<u64> = (0..500).map(|_| rng.next_u64() % 800).collect();
        let orig = data.clone();
        let mut ops = OpCount::new();
        let off = partition_by_bounds(&mut data, &bounds, &mut ops);
        assert_eq!(off.len(), bounds.len() + 2);
        assert_eq!((off[0], *off.last().unwrap()), (0, data.len()));
        for b in 0..bounds.len() + 1 {
            for &x in &data[off[b]..off[b + 1]] {
                assert_eq!(oracle_bucket(&bounds, x), b, "x={x} in bucket {b}");
            }
        }
        // Multiset preserved.
        let (mut a, mut b) = (data, orig);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(ops.cmps > 0);
    }

    #[test]
    fn empty_buckets_and_empty_inputs() {
        let bounds = vec![SepBound::le(5u64), SepBound::le(10), SepBound::le(20)];
        let mut data: Vec<u64> = vec![30, 31, 32];
        let mut ops = OpCount::new();
        let off = partition_by_bounds(&mut data, &bounds, &mut ops);
        assert_eq!(off, vec![0, 0, 0, 0, 3]); // everything past every bound
        let mut none: Vec<u64> = Vec::new();
        let off = partition_by_bounds(&mut none, &bounds, &mut ops);
        assert_eq!(off, vec![0, 0, 0, 0, 0]);
        let mut flat = vec![1u64, 2, 3];
        let off = partition_by_bounds(&mut flat, &[], &mut ops);
        assert_eq!(off, vec![0, 3]);
    }
}
