//! Cross-backend conformance and fault-injection harness.
//!
//! The engine's execution seam ([`cgselect::ExecBackend`]) promises that
//! *where* the shards live — the in-process `LocalSpmd` session or the
//! message-passing `ChannelMp` worker ring — is unobservable: every
//! scenario family (all 8 workload distributions × the full
//! ingest-burst/delta-merge/delete/rebalance lifecycle) must produce
//! answers identical to the sequential oracle **and** identical
//! collective-round counts on both backends. The fault-injection half pins
//! down the failure contract at the same boundary: a worker panic
//! mid-batch, a lost reply, or a straggling shard must surface typed
//! errors (never hangs), poison the backend, and reject subsequent work
//! fast — mirroring `RunError::SessionPoisoned` semantics.

use std::time::{Duration, Instant};

use cgselect::{
    quantile_rank, Answer, BackendChoice, BackendError, BackendKind, ChannelMpTuning, Distribution,
    Engine, EngineConfig, EngineError, Fault, FrontendConfig, IndexHealth, MachineModel, Query,
    SocketMpTuning, SubmitError,
};

const ALL_DISTRIBUTIONS: [Distribution; 8] = [
    Distribution::Random,
    Distribution::Sorted,
    Distribution::ReverseSorted,
    Distribution::FewDistinct(17),
    Distribution::Gaussian,
    Distribution::Zipf,
    Distribution::OrganPipe,
    Distribution::AllEqual,
];

fn cfg(p: usize, backend: BackendChoice) -> EngineConfig {
    // A tight delta threshold so ingest bursts cross merge boundaries and a
    // small bucket target so refinement stays visible.
    EngineConfig::new(p)
        .model(MachineModel::free())
        .index_buckets(16)
        .delta_threshold(0.03)
        .backend(backend)
}

fn channel_mp() -> BackendChoice {
    BackendChoice::ChannelMp(ChannelMpTuning::default())
}

fn mixed_batch(n: u64) -> Vec<Query> {
    vec![
        Query::Rank(0),
        Query::Rank(n / 3),
        Query::Rank(n - 1),
        Query::quantile(0.1),
        Query::quantile(0.5),
        Query::quantile(0.9),
        Query::Median,
        Query::TopK(5.min(n)),
    ]
}

fn oracle_answers(sorted: &[u64], queries: &[Query]) -> Vec<Answer<u64>> {
    let n = sorted.len() as u64;
    queries
        .iter()
        .map(|q| match *q {
            Query::Rank(k) => Answer::Value(sorted[k as usize]),
            Query::Median => Answer::Value(sorted[((n - 1) / 2) as usize]),
            Query::Quantile { q, .. } => Answer::Value(sorted[quantile_rank(q, n) as usize]),
            Query::TopK(k) => Answer::Top(sorted[..k as usize].to_vec()),
        })
        .collect()
}

/// What one lifecycle step observed — everything that must be identical
/// across backends, including the collective-round budget.
#[derive(Debug, Clone, PartialEq)]
struct Step {
    label: String,
    answers: Vec<Answer<u64>>,
    collective_ops: u64,
    histogram_answers: usize,
    len: u64,
    health: IndexHealth,
}

/// Drives one engine through the full mutation lifecycle for one
/// distribution, oracle-checking every step, and records what the backend
/// did. The op sequence is identical for every backend by construction.
fn run_lifecycle(backend: BackendChoice, dist: Distribution) -> Vec<Step> {
    let p = 4;
    let n = 3000usize;
    let data: Vec<u64> = cgselect::generate(dist, n, p, 23).into_iter().flatten().collect();
    let mut engine: Engine<u64> = Engine::new(cfg(p, backend)).unwrap();
    let mut all: Vec<u64> = Vec::new();
    let mut steps = Vec::new();

    let mut check = |engine: &mut Engine<u64>, all: &[u64], label: String| {
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        let queries = mixed_batch(sorted.len() as u64);
        let report = engine.execute(&queries).unwrap();
        assert_eq!(
            report.answers,
            oracle_answers(&sorted, &queries),
            "{} diverged from the oracle at step {label} ({dist:?})",
            engine.backend_kind(),
        );
        steps.push(Step {
            label,
            answers: report.answers,
            collective_ops: report.collective_ops,
            histogram_answers: report.histogram_answers,
            len: engine.len(),
            health: engine.index_health(),
        });
    };

    // Phase 1: bulk ingest of two thirds; the first batch builds the index.
    let (bulk, tail) = data.split_at(2 * n / 3);
    all.extend_from_slice(bulk);
    engine.ingest(bulk.to_vec()).unwrap();
    check(&mut engine, &all, "bulk".into());
    assert!(engine.index_health().buckets > 0, "{dist:?}: index must build");

    // Phase 2: the remaining third arrives in bursts that ride the delta
    // run and trip amortized merges at the threshold boundary.
    for (i, burst) in tail.chunks(n / 9).enumerate() {
        all.extend_from_slice(burst);
        engine.ingest(burst.to_vec()).unwrap();
        check(&mut engine, &all, format!("burst {i}"));
    }
    assert!(
        engine.index_health().delta_merges >= 1,
        "{dist:?}: bursts must have crossed the merge threshold ({:?})",
        engine.index_health()
    );

    // Phase 3: delete two resident value classes through the index
    // (skipped for the single-value distribution, which it would empty).
    if all.iter().any(|&x| x != all[0]) {
        let mut sorted = all.clone();
        sorted.sort_unstable();
        let victims = vec![sorted[n / 4], sorted[(3 * n) / 4]];
        engine.delete(&victims).unwrap();
        all.retain(|x| !victims.contains(x));
        check(&mut engine, &all, "delete".into());
    }

    // Phase 4: a hot-shard burst trips the watermark; the rebalance drops
    // the splitters and the next batch rebuilds them.
    let rebuilds_before = engine.index_health().rebuilds;
    let hot: Vec<u64> = (0..all.len() as u64).map(|i| i.wrapping_mul(2654435761)).collect();
    all.extend(&hot);
    let rep = engine.ingest_pinned(1, hot).unwrap();
    assert!(rep.rebalanced, "{dist:?}: watermark must trip");
    check(&mut engine, &all, "rebalance".into());
    assert!(
        engine.index_health().rebuilds > rebuilds_before,
        "{dist:?}: rebalance must force a splitter rebuild"
    );
    steps
}

// ---------------------------------------------------------------------------
// Conformance: each backend against the oracle, then differentially.
// ---------------------------------------------------------------------------

#[test]
fn conformance_local_spmd_all_distributions() {
    for dist in ALL_DISTRIBUTIONS {
        let steps = run_lifecycle(BackendChoice::LocalSpmd, dist);
        assert!(steps.len() >= 5, "{dist:?}: lifecycle must cover every phase");
    }
}

#[test]
fn conformance_channel_mp_all_distributions() {
    for dist in ALL_DISTRIBUTIONS {
        let steps = run_lifecycle(channel_mp(), dist);
        assert!(steps.len() >= 5, "{dist:?}: lifecycle must cover every phase");
    }
}

#[test]
fn backends_agree_on_answers_and_collective_rounds() {
    for dist in ALL_DISTRIBUTIONS {
        let local = run_lifecycle(BackendChoice::LocalSpmd, dist);
        let mp = run_lifecycle(channel_mp(), dist);
        assert_eq!(local.len(), mp.len(), "{dist:?}: lifecycle shapes diverged");
        for (a, b) in local.iter().zip(&mp) {
            assert_eq!(
                a, b,
                "{dist:?} step {}: backends must agree on answers, collective-round \
                 counts and index health",
                a.label
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The v2 inverse op (`count_below` probe Combine): equal answers and equal
// round counts on both backends, through the mutation lifecycle.
// ---------------------------------------------------------------------------

/// Drives inverse-query batches (rank-of + range counts) through
/// ingest-burst / delete phases on one backend, oracle-checking every
/// answer and recording the per-batch collective-round counts.
fn run_inverse_lifecycle(backend: BackendChoice, dist: Distribution) -> Vec<(Vec<u64>, u64)> {
    use cgselect::{Bounds, Request};
    let p = 4;
    let n = 3000usize;
    let data: Vec<u64> = cgselect::generate(dist, n, p, 41).into_iter().flatten().collect();
    let mut engine: Engine<u64> = Engine::new(cfg(p, backend)).unwrap();
    let mut all: Vec<u64> = Vec::new();
    let mut steps: Vec<(Vec<u64>, u64)> = Vec::new();

    let mut check = |engine: &mut Engine<u64>, all: &[u64], label: &str| {
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        let lo = sorted[sorted.len() / 4];
        let hi = sorted[(3 * sorted.len()) / 4];
        let requests = vec![
            Request::rank_of(sorted[sorted.len() / 2]),
            Request::rank_of(hi.saturating_add(1)),
            Request::count_between(Bounds::closed(lo, hi)),
            Request::count_between(Bounds::below(lo)),
            Request::count_between(Bounds::at_least(hi)),
        ];
        let report = engine.run(&requests).unwrap();
        let counts: Vec<u64> =
            report.outcomes.iter().map(|o| o.response.count().expect("count answer")).collect();
        let oracle = |v: u64, incl: bool| {
            if incl {
                sorted.partition_point(|&x| x <= v) as u64
            } else {
                sorted.partition_point(|&x| x < v) as u64
            }
        };
        let expect = vec![
            oracle(sorted[sorted.len() / 2], false),
            oracle(hi.saturating_add(1), false),
            oracle(hi, true) - oracle(lo, false),
            oracle(lo, false),
            sorted.len() as u64 - oracle(hi, false),
        ];
        assert_eq!(
            counts,
            expect,
            "{} diverged from the inverse oracle at step {label} ({dist:?})",
            engine.backend_kind()
        );
        steps.push((counts, report.collective_ops));
    };

    // Bulk ingest, then an exact batch to build (and refine) the index.
    let (bulk, tail) = data.split_at(2 * n / 3);
    all.extend_from_slice(bulk);
    engine.ingest(bulk.to_vec()).unwrap();
    engine.execute(&[Query::Median]).unwrap();
    check(&mut engine, &all, "bulk");
    // A burst rides the delta run: probes must fold it in exactly.
    all.extend_from_slice(tail);
    engine.ingest(tail.to_vec()).unwrap();
    check(&mut engine, &all, "delta");
    // Delete a value class through the index.
    if all.iter().any(|&x| x != all[0]) {
        let mut sorted = all.clone();
        sorted.sort_unstable();
        let victim = sorted[n / 3];
        engine.delete(&[victim]).unwrap();
        all.retain(|&x| x != victim);
        check(&mut engine, &all, "delete");
    }
    steps
}

#[test]
fn inverse_ops_agree_on_answers_and_rounds_across_backends() {
    for dist in ALL_DISTRIBUTIONS {
        let local = run_inverse_lifecycle(BackendChoice::LocalSpmd, dist);
        let mp = run_inverse_lifecycle(channel_mp(), dist);
        assert_eq!(
            local, mp,
            "{dist:?}: backends must agree on inverse answers and collective-round counts"
        );
    }
}

#[test]
fn probe_round_count_is_independent_of_probe_batch_size_on_both_backends() {
    use cgselect::Request;
    // The acceptance bar for the new op: the whole probe batch rides ONE
    // vectorized Combine, so 12 probes cost exactly the rounds of 1 — on
    // both backends, with identical counts.
    let data: Vec<u64> = (0..20_000u64).map(|i| i.wrapping_mul(48271) % 1_000_003).collect();
    let mut measured = Vec::new();
    for backend in backends() {
        let mut engine: Engine<u64> = Engine::new(cfg(4, backend)).unwrap();
        engine.ingest(data.clone()).unwrap();
        engine.execute(&[Query::Median]).unwrap(); // builds the index
        let one = engine.run(&[Request::rank_of(500_001)]).unwrap();
        let batch: Vec<Request<u64>> =
            (0..12u64).map(|i| Request::rank_of(500_003 + i * 39_119)).collect();
        let many = engine.run(&batch).unwrap();
        assert_eq!(
            one.collective_ops,
            many.collective_ops,
            "{}: probe batches must share one Combine round",
            engine.backend_kind()
        );
        measured.push((one.collective_ops, many.collective_ops));
    }
    assert_eq!(measured[0], measured[1], "backends must agree on probe round counts");
}

/// Short timeouts so injected faults resolve in milliseconds, not the 30 s
/// production defaults.
fn faulty(faults: &[Fault]) -> BackendChoice {
    let mut tuning = ChannelMpTuning::new()
        .reply_timeout(Duration::from_millis(2000))
        .proc_timeout(Duration::from_millis(300));
    for f in faults {
        tuning = tuning.fault(f.clone());
    }
    BackendChoice::ChannelMp(tuning)
}

#[test]
fn worker_panic_mid_batch_surfaces_typed_error_and_poisons() {
    let mut engine: Engine<u64> =
        Engine::new(cfg(3, faulty(&[Fault::PanicOnExecute { rank: 1, nth: 1 }]))).unwrap();
    engine.ingest((0..3000u64).rev().collect()).unwrap();

    // Execute 0 is healthy; execute 1 hits the injected mid-batch panic.
    let ok = engine.execute(&[Query::Median]).unwrap();
    assert_eq!(ok.answers[0], Answer::Value(1499));
    let err = engine.execute(&[Query::quantile(0.25)]).unwrap_err();
    match err {
        EngineError::Backend(BackendError::WorkerPanicked { rank, ref message }) => {
            assert_eq!(rank, 1, "the injected faulty rank must be reported, got {err:?}");
            assert!(message.contains("injected fault"), "root cause lost: {message}");
        }
        other => panic!("expected a typed worker panic, got {other:?}"),
    }

    // Poisoned: subsequent batches are rejected fast (no collective work,
    // no timeout waits), as are mutations.
    let t0 = Instant::now();
    let err = engine.execute(&[Query::Median]).unwrap_err();
    assert_eq!(err, EngineError::Backend(BackendError::Poisoned));
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "poisoned rejection must be fast, took {:?}",
        t0.elapsed()
    );
    let err = engine.ingest(vec![1, 2, 3]).unwrap_err();
    assert_eq!(err, EngineError::Backend(BackendError::Poisoned));
    // Dropping the poisoned engine must still join every worker (covered
    // again by the thread-leak test below).
    drop(engine);
}

#[test]
fn dropped_reply_surfaces_worker_unresponsive_and_poisons() {
    let mut engine: Engine<u64> =
        Engine::new(cfg(3, faulty(&[Fault::DropReplyOnExecute { rank: 2, nth: 0 }]))).unwrap();
    engine.ingest((0..2000u64).collect()).unwrap();
    let err = engine.execute(&[Query::Median]).unwrap_err();
    assert_eq!(
        err,
        EngineError::Backend(BackendError::WorkerUnresponsive { rank: 2 }),
        "a lost reply must surface as a typed timeout on the silent rank"
    );
    let err = engine.execute(&[Query::Median]).unwrap_err();
    assert_eq!(err, EngineError::Backend(BackendError::Poisoned));
}

#[test]
fn slow_shard_stays_correct_within_timeouts() {
    let choice = BackendChoice::ChannelMp(
        ChannelMpTuning::new()
            .fault(Fault::SlowShard { rank: 0, delay: Duration::from_millis(40) }),
    );
    let mut slow: Engine<u64> = Engine::new(cfg(3, choice)).unwrap();
    let mut reference: Engine<u64> = Engine::new(cfg(3, BackendChoice::LocalSpmd)).unwrap();
    let data: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(48271) % 9973).collect();
    slow.ingest(data.clone()).unwrap();
    reference.ingest(data).unwrap();
    let queries = mixed_batch(2000);
    let a = slow.execute(&queries).unwrap();
    let b = reference.execute(&queries).unwrap();
    // A straggler changes wall-clock latency, never results or rounds.
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.collective_ops, b.collective_ops);
}

// ---------------------------------------------------------------------------
// Frontend shutdown hands the engine back intact on both backends.
// ---------------------------------------------------------------------------

fn backends() -> [BackendChoice; 2] {
    [BackendChoice::LocalSpmd, channel_mp()]
}

#[test]
fn frontend_shutdown_mid_window_hands_engine_back_on_both_backends() {
    for backend in backends() {
        let kind = backend.kind();
        let mut engine: Engine<u64> = Engine::new(cfg(2, backend)).unwrap();
        engine.ingest((0..500u64).collect()).unwrap();
        // A very wide window: the submitted queries hold the batch open, so
        // shutdown lands while a micro-batch window is collecting.
        let queue = engine.into_frontend(FrontendConfig::new().window(Duration::from_secs(5)));
        let t1 = queue.submit(Query::Median).unwrap();
        let t2 = queue.submit(Query::Rank(0)).unwrap();
        let mut engine = queue.shutdown().expect("first shutdown claims the engine");
        // Accepted submissions were drained before the hand-off.
        assert_eq!(t1.wait(), Ok(Answer::Value(249)), "{kind}");
        assert_eq!(t2.wait(), Ok(Answer::Value(0)), "{kind}");
        // The engine comes back intact and serviceable.
        assert_eq!(engine.len(), 500, "{kind}");
        let report = engine.execute(&[Query::TopK(2)]).unwrap();
        assert_eq!(report.answers[0], Answer::Top(vec![0, 1]), "{kind}");
    }
}

#[test]
fn frontend_shutdown_under_saturation_keeps_engine_intact_on_both_backends() {
    for backend in backends() {
        let kind = backend.kind();
        let mut engine: Engine<u64> = Engine::new(cfg(2, backend)).unwrap();
        engine.ingest((0..500u64).collect()).unwrap();
        // Paused + tiny capacity: saturate the queue, then shut down with
        // the backlog still parked.
        let queue =
            engine.into_frontend(FrontendConfig::new().queue_capacity(2).start_paused(true));
        let parked: Vec<_> = (0..2).map(|_| queue.submit(Query::Median).unwrap()).collect();
        match queue.submit(Query::Median) {
            Err(SubmitError::Saturated { capacity: 2 }) => {}
            other => panic!("{kind}: expected saturation, got {other:?}"),
        }
        let mut engine = queue.shutdown().expect("first shutdown claims the engine");
        // The parked backlog was drained (closing overrides the pause).
        for t in parked {
            assert_eq!(t.wait(), Ok(Answer::Value(249)), "{kind}");
        }
        assert_eq!(engine.len(), 500, "{kind}");
        assert_eq!(engine.execute(&[Query::Median]).unwrap().answers[0], Answer::Value(249));
    }
}

// ---------------------------------------------------------------------------
// Join-on-drop: no leaked worker threads, even mid-lifecycle.
// ---------------------------------------------------------------------------

fn live_threads() -> Option<usize> {
    // Linux-only thread census; fine for CI (ubuntu) and this container.
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

#[test]
fn dropping_engine_mid_lifecycle_leaks_no_threads_on_both_backends() {
    if live_threads().is_none() {
        eprintln!("no /proc/self/task; skipping thread-leak check");
        return;
    }
    for backend in backends() {
        let kind = backend.kind();
        // The census races against sibling tests spawning their own engine
        // threads, so a single noisy sample may over-count; a genuine leak
        // (join-on-drop broken) raises the count on *every* attempt.
        let mut leak = None;
        for _ in 0..5 {
            let before = live_threads().unwrap();
            let mut engine: Engine<u64> =
                Engine::new(cfg(4, backend.clone()).delta_threshold(10.0)).unwrap();
            engine.ingest((0..4000u64).collect()).unwrap();
            engine.execute(&[Query::Median]).unwrap(); // builds the index
            engine.ingest((0..100u64).collect()).unwrap(); // populates the delta run
            assert!(
                engine.index_health().delta_len > 0,
                "{kind}: drop must land mid-lifecycle, with a non-empty delta run"
            );
            drop(engine); // join-on-drop: all worker threads must exit here
            let after = live_threads().unwrap();
            if after <= before {
                leak = None;
                break;
            }
            leak = Some((before, after));
        }
        if let Some((before, after)) = leak {
            panic!("{kind}: dropping the engine leaked worker threads ({before} -> {after})");
        }
    }
}

// ---------------------------------------------------------------------------
// Property test: random interleavings are byte-identical across backends.
// ---------------------------------------------------------------------------

mod interleavings {
    use super::*;
    use proptest::prelude::*;

    /// One deterministic op stream derived from the seeds: interleaved
    /// ingest / delete / query batches (queries drawn from a small pool so
    /// histogram fast paths and refinement both engage).
    fn apply_ops(backend: BackendChoice, seeds: &[u64]) -> (Vec<String>, IndexHealth) {
        let mut engine: Engine<u64> = Engine::new(cfg(3, backend)).unwrap();
        let mut resident: Vec<u64> = Vec::new();
        let mut transcript = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            match seed % 4 {
                0 | 3 if !resident.is_empty() => {
                    // A query batch: two quantiles + a rank derived from the seed.
                    let n = resident.len() as u64;
                    let queries = vec![
                        Query::quantile((seed % 101) as f64 / 100.0),
                        Query::Median,
                        Query::Rank(seed % n),
                    ];
                    let report = engine.execute(&queries).unwrap();
                    // "Byte-identical answer sequences": compare the full
                    // rendered answers, not just values.
                    transcript
                        .push(format!("{i}: {:?} ops={}", report.answers, report.collective_ops));
                }
                1 | 0 | 3 => {
                    // Ingest a burst derived from the seed.
                    let burst: Vec<u64> =
                        (0..40 + seed % 60).map(|j| (seed.wrapping_mul(j + 1)) % 10_007).collect();
                    resident.extend(&burst);
                    engine.ingest(burst).unwrap();
                    transcript.push(format!("{i}: ingest -> {}", engine.len()));
                }
                _ => {
                    // Delete a value class (possibly absent).
                    let victim = seed % 10_007;
                    let rep = engine.delete(&[victim]).unwrap();
                    resident.retain(|&x| x != victim);
                    transcript.push(format!("{i}: delete {} -> {}", rep.elements, engine.len()));
                }
            }
            assert_eq!(engine.len(), resident.len() as u64);
        }
        (transcript, engine.index_health())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any interleaving of query/ingest/delete batches produces
        /// byte-identical answer sequences on LocalSpmd vs ChannelMp, with
        /// the index health counters (histogram hits, merges, rebuilds) in
        /// agreement.
        #[test]
        fn random_interleavings_agree(
            seeds in prop::collection::vec(1u64..1_000_000_000, 4..14),
        ) {
            let (local_log, local_health) = apply_ops(BackendChoice::LocalSpmd, &seeds);
            let (mp_log, mp_health) = apply_ops(super::channel_mp(), &seeds);
            prop_assert_eq!(
                local_log.join("\n").into_bytes(),
                mp_log.join("\n").into_bytes(),
                "backends diverged under interleaving {:?}", seeds
            );
            prop_assert_eq!(local_health, mp_health);
        }
    }
}

// ---------------------------------------------------------------------------
// Observability: span trees are part of the conformance surface.
// ---------------------------------------------------------------------------

#[test]
fn span_trees_agree_across_backends() {
    use cgselect::{Bounds, Request};
    // Phase brackets ride the deterministic virtual clock and the comm
    // counters, so with observability on, both backends must produce the
    // SAME span tree: same phases in the same order, same per-phase
    // collective counts, comm volumes and virtual times. Trace IDs are
    // process-global and excluded from the comparison by stamping them.
    let data: Vec<u64> = (0..6000u64).map(|i| i.wrapping_mul(48271) % 99_991).collect();
    let mut trees = Vec::new();
    for backend in backends() {
        let mut engine: Engine<u64> = Engine::new(cfg(4, backend).observe(true)).unwrap();
        engine.ingest(data.clone()).unwrap();
        engine.execute(&[Query::Median]).unwrap(); // builds the index
        let requests: Vec<Request<u64>> = vec![
            Query::quantile(0.25).to_request(),
            Query::Rank(17).to_request(),
            Request::rank_of(50_000),
            Request::count_between(Bounds::closed(10_000, 20_000)),
            Query::TopK(3).to_request(),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.traced(cgselect::TraceId(100 + i as u64)))
        .collect();
        let report = engine.run(&requests).unwrap();
        let span = report.span.expect("observing engines must attach a batch span");
        assert_eq!(span.requests.len(), requests.len());
        for (req_span, req) in span.requests.iter().zip(&requests) {
            assert_eq!(Some(req_span.trace), req.trace, "spans must link back to their request");
        }
        trees.push((span.requests, span.phases));
    }
    assert_eq!(
        trees[0], trees[1],
        "backends must agree on the span tree: phases, collective counts, comm, virtual time"
    );
}

#[test]
fn observing_engines_answer_identically_with_identical_rounds() {
    // The zero-cost contract: observability must not perturb execution.
    // Same data, same batch — obs-on and obs-off engines must agree on
    // every answer AND every collective-round count, on both backends.
    let data: Vec<u64> = (0..4000u64).map(|i| i.wrapping_mul(2654435761) % 65_521).collect();
    for backend in backends() {
        let kind = backend.kind();
        let mut plain: Engine<u64> = Engine::new(cfg(4, backend.clone())).unwrap();
        let mut observed: Engine<u64> = Engine::new(cfg(4, backend).observe(true)).unwrap();
        plain.ingest(data.clone()).unwrap();
        observed.ingest(data.clone()).unwrap();
        let requests: Vec<cgselect::Request<u64>> =
            mixed_batch(data.len() as u64).iter().map(Query::to_request).collect();
        for label in ["build", "steady"] {
            let a = plain.run(&requests).unwrap();
            let b = observed.run(&requests).unwrap();
            let (va, vb): (Vec<_>, Vec<_>) = (
                a.outcomes.iter().map(|o| &o.response).collect(),
                b.outcomes.iter().map(|o| &o.response).collect(),
            );
            assert_eq!(va, vb, "{kind}/{label}: observability changed answers");
            assert_eq!(
                a.collective_ops, b.collective_ops,
                "{kind}/{label}: observability changed the collective-round count"
            );
            assert_eq!(a.makespan, b.makespan, "{kind}/{label}: observability charged time");
            assert!(a.span.is_none() && b.span.is_some());
        }
    }
}

#[test]
fn backend_kind_is_reported() {
    let local: Engine<u64> = Engine::new(cfg(2, BackendChoice::LocalSpmd)).unwrap();
    assert_eq!(local.backend_kind(), BackendKind::LocalSpmd);
    assert_eq!(local.backend_kind().to_string(), "local-spmd");
    let mp: Engine<u64> = Engine::new(cfg(2, channel_mp())).unwrap();
    assert_eq!(mp.backend_kind(), BackendKind::ChannelMp);
    assert_eq!(mp.backend_kind().to_string(), "channel-mp");
}

// ---------------------------------------------------------------------------
// SocketMp: shard workers as real child processes over Unix-domain sockets.
// Same conformance bar (oracle answers + collective-round parity), plus the
// process-only contracts: SIGKILL surfaces typed errors, drop reaps every
// child, and membership moves (migrate / join / retire / recover) keep the
// engine serving exact answers.
// ---------------------------------------------------------------------------

/// Builds the worker binary once if this test target was invoked without it
/// (e.g. `cargo test --test backend_conformance`, which only builds hashed
/// `deps/` artifacts). No-op when `target/<profile>/cgselect-shard-worker`
/// already exists — the CI socket-mp leg builds it explicitly.
fn ensure_worker_bin() {
    use std::sync::Once;
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        let exe = std::env::current_exe().expect("current_exe");
        let profile_dir = exe
            .parent()
            .and_then(|deps| deps.parent())
            .expect("test executable must live under target/<profile>/deps");
        if profile_dir.join("cgselect-shard-worker").is_file() {
            return;
        }
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = std::process::Command::new(cargo);
        cmd.args(["build", "-p", "cgselect-engine", "--bin", "cgselect-shard-worker"]);
        if profile_dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("spawn cargo to build the shard worker");
        assert!(status.success(), "building cgselect-shard-worker failed");
    });
}

fn socket_mp() -> BackendChoice {
    ensure_worker_bin();
    BackendChoice::SocketMp(SocketMpTuning::default())
}

/// Short proc timeout so survivors of a killed peer self-release in
/// milliseconds (production default: 30 s), with a generous reply window
/// above it so slow CI machines never misreport a healthy worker.
fn socket_mp_faulty() -> BackendChoice {
    ensure_worker_bin();
    BackendChoice::SocketMp(
        SocketMpTuning::new()
            .reply_timeout(Duration::from_secs(10))
            .proc_timeout(Duration::from_millis(500)),
    )
}

fn process_alive(pid: u32) -> bool {
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

fn kill9(pid: u32) {
    let status = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -9 {pid} failed");
}

#[test]
fn conformance_socket_mp_all_distributions_with_in_process_round_parity() {
    for dist in ALL_DISTRIBUTIONS {
        let sock = run_lifecycle(socket_mp(), dist);
        assert!(sock.len() >= 5, "{dist:?}: lifecycle must cover every phase");
        // The process boundary must be unobservable: identical answers,
        // collective-round counts and index health, step for step, against
        // both in-process backends.
        let local = run_lifecycle(BackendChoice::LocalSpmd, dist);
        let mp = run_lifecycle(channel_mp(), dist);
        assert_eq!(sock, local, "{dist:?}: socket workers diverged from LocalSpmd");
        assert_eq!(sock, mp, "{dist:?}: socket workers diverged from ChannelMp");
    }
}

#[test]
fn socket_mp_inverse_ops_match_in_process_answers_and_rounds() {
    for dist in [Distribution::Random, Distribution::Zipf, Distribution::AllEqual] {
        let local = run_inverse_lifecycle(BackendChoice::LocalSpmd, dist);
        let sock = run_inverse_lifecycle(socket_mp(), dist);
        assert_eq!(
            local, sock,
            "{dist:?}: inverse answers / round counts must survive the process boundary"
        );
    }
}

#[test]
fn socket_mp_sigkill_mid_batch_surfaces_typed_error_and_poisons() {
    let mut engine: Engine<u64> = Engine::new(cfg(3, socket_mp_faulty())).unwrap();
    engine.ingest((0..3000u64).map(|i| i.wrapping_mul(2654435761)).collect()).unwrap();
    engine.execute(&[Query::Median]).unwrap();

    let pids = engine.worker_pids();
    assert_eq!(pids.len(), 3, "one OS process per shard");
    kill9(pids[1]);
    // SIGKILL closes rank 1's sockets; the next batch's collective wedges on
    // the dead peer and must resolve to a *typed* error on the killed rank —
    // never a hang (survivors self-release via the proc timeout, and their
    // disconnect fallout is triaged as secondary).
    let t0 = Instant::now();
    let err = engine.execute(&mixed_batch(3000)).unwrap_err();
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "a killed worker must fail the batch fast, took {:?}",
        t0.elapsed()
    );
    match err {
        EngineError::Backend(BackendError::WorkerUnresponsive { rank })
        | EngineError::Backend(BackendError::WorkerPanicked { rank, .. }) => {
            assert_eq!(rank, 1, "the killed rank must be reported, got {err:?}");
        }
        other => panic!("expected a typed rank-1 worker failure, got {other:?}"),
    }

    // Poisoned: subsequent work is rejected without touching the ring.
    let t0 = Instant::now();
    let err = engine.execute(&[Query::Median]).unwrap_err();
    assert_eq!(err, EngineError::Backend(BackendError::Poisoned));
    assert!(t0.elapsed() < Duration::from_millis(100), "poisoned rejection must be fast");
    drop(engine); // must still reap the two survivors (checked below)
}

#[test]
fn socket_mp_drop_reaps_every_worker_process() {
    let mut engine: Engine<u64> = Engine::new(cfg(4, socket_mp())).unwrap();
    engine.ingest((0..1000u64).rev().collect()).unwrap();
    engine.execute(&[Query::Median]).unwrap();
    let pids = engine.worker_pids();
    assert_eq!(pids.len(), 4);
    for &pid in &pids {
        assert!(process_alive(pid), "worker {pid} should be running");
    }
    drop(engine);
    // Drop sends EXIT and waits on every child: no orphans, no zombies (a
    // zombie still has a /proc entry, so this catches unreaped children too).
    for &pid in &pids {
        assert!(!process_alive(pid), "worker {pid} leaked past engine drop");
    }
}

#[test]
fn socket_mp_migration_mid_query_stream_is_invisible() {
    let p = 4;
    let n = 3000usize;
    let data: Vec<u64> =
        cgselect::generate(Distribution::Zipf, n, p, 77).into_iter().flatten().collect();
    let mut migrating: Engine<u64> = Engine::new(cfg(p, socket_mp())).unwrap();
    let mut reference: Engine<u64> = Engine::new(cfg(p, socket_mp())).unwrap();
    let mut all: Vec<u64> = Vec::new();

    let check = |migrating: &mut Engine<u64>,
                 reference: &mut Engine<u64>,
                 all: &[u64],
                 label: &str| {
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        let queries = mixed_batch(sorted.len() as u64);
        let a = migrating.execute(&queries).unwrap();
        let b = reference.execute(&queries).unwrap();
        assert_eq!(a.answers, oracle_answers(&sorted, &queries), "{label}: oracle divergence");
        assert_eq!(a.answers, b.answers, "{label}: migration changed answers");
        assert_eq!(a.collective_ops, b.collective_ops, "{label}: migration changed round counts");
        assert_eq!(
            migrating.index_health(),
            reference.index_health(),
            "{label}: migration must keep the histogram warm (no extra rebuilds/merges)"
        );
    };

    // Build the index, then migrate two shards mid-stream and keep serving.
    let (bulk, tail) = data.split_at(2 * n / 3);
    all.extend_from_slice(bulk);
    migrating.ingest(bulk.to_vec()).unwrap();
    reference.ingest(bulk.to_vec()).unwrap();
    check(&mut migrating, &mut reference, &all, "before migration");

    let before = migrating.worker_pids();
    migrating.migrate_shard(1).unwrap();
    migrating.migrate_shard(3).unwrap();
    let after = migrating.worker_pids();
    assert_ne!(before[1], after[1], "migration must move the shard to a fresh process");
    assert_ne!(before[3], after[3], "migration must move the shard to a fresh process");
    assert_eq!(before[0], after[0], "unmigrated shards must keep their process");
    assert!(!process_alive(before[1]), "the migrated-away worker must be reaped");
    check(&mut migrating, &mut reference, &all, "after migration");

    // The rest of the stream rides the delta run and a delete, still in step.
    all.extend_from_slice(tail);
    migrating.ingest(tail.to_vec()).unwrap();
    reference.ingest(tail.to_vec()).unwrap();
    check(&mut migrating, &mut reference, &all, "delta after migration");
    let victim = {
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted[n / 3]
    };
    migrating.delete(&[victim]).unwrap();
    reference.delete(&[victim]).unwrap();
    all.retain(|&x| x != victim);
    check(&mut migrating, &mut reference, &all, "delete after migration");
}

#[test]
fn socket_mp_join_and_retire_keep_serving_exact_answers() {
    let mut engine: Engine<u64> = Engine::new(cfg(3, socket_mp())).unwrap();
    let mut all: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(48271) % 100_003).collect();
    engine.ingest(all.clone()).unwrap();

    let check = |engine: &mut Engine<u64>, all: &[u64], label: &str| {
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        let queries = mixed_batch(sorted.len() as u64);
        let report = engine.execute(&queries).unwrap();
        assert_eq!(report.answers, oracle_answers(&sorted, &queries), "{label}: wrong answers");
        assert_eq!(engine.len(), all.len() as u64, "{label}: population drifted");
    };
    check(&mut engine, &all, "initial p=3");

    // Grow: a fresh empty worker joins at the top rank.
    assert_eq!(engine.join_worker().unwrap(), 4);
    assert_eq!(engine.worker_pids().len(), 4);
    check(&mut engine, &all, "after join");
    let burst: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(69621) % 99_991).collect();
    all.extend_from_slice(&burst);
    engine.ingest(burst).unwrap();
    check(&mut engine, &all, "ingest over the grown ring");

    // Shrink: retiring merges the leaver's shard into a survivor — no data
    // is lost, ranks above shift down, and the ring keeps serving all the
    // way to a single worker (the degenerate one-process fabric).
    assert_eq!(engine.retire_worker(0).unwrap(), 3);
    check(&mut engine, &all, "after retiring rank 0");
    assert_eq!(engine.retire_worker(1).unwrap(), 2);
    assert_eq!(engine.retire_worker(0).unwrap(), 1);
    assert_eq!(engine.worker_pids().len(), 1);
    check(&mut engine, &all, "single surviving worker");

    // The last shard refuses to retire.
    let err = engine.retire_worker(0).unwrap_err();
    assert!(
        matches!(err, EngineError::Backend(BackendError::Unsupported { .. })),
        "retiring the last shard must be a typed refusal, got {err:?}"
    );
    check(&mut engine, &all, "still serving after the refusal");
}

// ---------------------------------------------------------------------------
// The ε-sketch rung is part of the conformance surface: a WithinRank-tolerant
// stream must be served from the host-global deterministic sketch with ZERO
// collectives, and — because the sketch is RNG-free — with bit-identical
// answers, guarantees and `Served` routing on every backend, through the
// full ingest / delete / migrate / rebalance lifecycle.
// ---------------------------------------------------------------------------

/// What one tolerant-batch step observed — everything that must be
/// identical across backends for the sketch rung.
#[derive(Debug, Clone, PartialEq)]
struct SketchStep {
    label: String,
    outcomes: Vec<(cgselect::Served, String)>,
    collective_ops: u64,
}

/// Drives a WithinRank-tolerant mixed stream (rank→value quantiles plus
/// value→rank and range-count probes) through the mutation lifecycle,
/// asserting at every step that the whole batch rides the sketch rung at
/// zero collectives and every answer honors its reported guarantee.
fn run_sketch_lifecycle(backend: BackendChoice, dist: Distribution) -> Vec<SketchStep> {
    use cgselect::{Bounds, Request, Served};
    let p = 4;
    let n = 3000usize;
    let tol = 0.05;
    let data: Vec<u64> = cgselect::generate(dist, n, p, 59).into_iter().flatten().collect();
    let mut engine: Engine<u64> = Engine::new(cfg(p, backend).sketch_capacity(256)).unwrap();
    let mut all: Vec<u64> = Vec::new();
    let mut steps: Vec<SketchStep> = Vec::new();

    let check = |engine: &mut Engine<u64>, all: &[u64], label: &str| -> SketchStep {
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        let m = sorted.len();
        let (lo, hi) = (sorted[m / 4], sorted[(3 * m) / 4]);
        let fracs = [0.1, 0.5, 0.9];
        let mut requests: Vec<Request<u64>> =
            fracs.iter().map(|&q| Request::<u64>::quantile(q).within_rank(tol)).collect();
        requests.push(Request::rank_of(sorted[m / 2]).within_rank(tol));
        requests.push(Request::count_between(Bounds::closed(lo, hi)).within_rank(tol));
        let report = engine.run(&requests).unwrap();
        let kind = engine.backend_kind();

        // The whole tolerant batch is served host-side: no collectives, no
        // backend phases, every request routed to the sketch rung.
        assert_eq!(
            report.collective_ops, 0,
            "{kind} {label} ({dist:?}): tolerant batches must be collective-free"
        );
        let budget = (tol * m as f64).ceil() as u64;
        let oracle = |v: u64, incl: bool| {
            if incl {
                sorted.partition_point(|&x| x <= v) as u64
            } else {
                sorted.partition_point(|&x| x < v) as u64
            }
        };
        for (i, outcome) in report.outcomes.iter().enumerate() {
            // The sketch rung serves every tolerant request unless the
            // cached histogram can answer it exactly (still host-side, and
            // step equality pins the routing choice across backends).
            assert!(
                matches!(outcome.served, Served::Sketch | Served::Histogram),
                "{kind} {label} ({dist:?}): request {i} must be served host-side, got {:?}",
                outcome.served
            );
            let max_error = outcome.response.max_error();
            assert!(
                max_error <= budget,
                "{kind} {label} ({dist:?}): request {i} guarantee {max_error} > budget {budget}"
            );
            if let Some(&q) = fracs.get(i) {
                // Rank→value: the answer's true rank interval must be
                // within the reported guarantee of the target.
                let target = quantile_rank(q, m as u64);
                let v = outcome.response.element().expect("value answer");
                let (lo_r, hi_r) = (oracle(v, false), oracle(v, true) - 1);
                let dist_to =
                    if target < lo_r { lo_r - target } else { target.saturating_sub(hi_r) };
                assert!(
                    dist_to <= max_error,
                    "{kind} {label} ({dist:?}): quantile {q} answer {v} off by {dist_to} \
                     > guarantee {max_error}"
                );
            } else {
                // Value→rank / range count: within the reported guarantee
                // of the exact count.
                let truth = if i == 3 {
                    oracle(sorted[m / 2], false)
                } else {
                    oracle(hi, true) - oracle(lo, false)
                };
                let count = outcome.response.count().expect("count answer");
                assert!(
                    count.abs_diff(truth) <= max_error,
                    "{kind} {label} ({dist:?}): count {count} vs {truth} \
                     > guarantee {max_error}"
                );
            }
        }
        SketchStep {
            label: label.to_string(),
            outcomes: report
                .outcomes
                .iter()
                .map(|o| (o.served, format!("{:?}", o.response)))
                .collect(),
            collective_ops: report.collective_ops,
        }
    };

    // Bulk + delta bursts feed the host sketch incrementally at ingest.
    let (bulk, tail) = data.split_at(2 * n / 3);
    all.extend_from_slice(bulk);
    engine.ingest(bulk.to_vec()).unwrap();
    steps.push(check(&mut engine, &all, "bulk"));
    all.extend_from_slice(tail);
    engine.ingest(tail.to_vec()).unwrap();
    steps.push(check(&mut engine, &all, "delta"));

    // A delete rebuilds the host sketch by merging the shards' exports
    // (skipped for the single-value distribution, which it would empty).
    if all.iter().any(|&x| x != all[0]) {
        let victims = {
            let mut sorted = all.clone();
            sorted.sort_unstable();
            vec![sorted[n / 4], sorted[(3 * n) / 4]]
        };
        engine.delete(&victims).unwrap();
        all.retain(|x| !victims.contains(x));
        steps.push(check(&mut engine, &all, "delete"));
    }

    // Migration moves a shard — and its sketch, inside the snapshot — to a
    // fresh process without changing the multiset: the rung must answer
    // identically before and after (SocketMp only; the in-process backends
    // have no migration verb).
    if engine.backend_kind() == BackendKind::SocketMp {
        let before = steps.last().expect("at least one step recorded").clone();
        engine.migrate_shard(1).unwrap();
        let after = check(&mut engine, &all, "migrate");
        assert_eq!(
            after.outcomes, before.outcomes,
            "{dist:?}: migration must be invisible to the sketch rung"
        );
    }

    // A hot burst trips the rebalance watermark; the sketch absorbs the
    // burst at ingest and the shard shuffle leaves it untouched.
    let hot: Vec<u64> = (0..all.len() as u64).map(|i| i.wrapping_mul(2654435761)).collect();
    all.extend(&hot);
    let rep = engine.ingest_pinned(1, hot).unwrap();
    assert!(rep.rebalanced, "{dist:?}: watermark must trip");
    steps.push(check(&mut engine, &all, "rebalance"));
    steps
}

#[test]
fn sketch_rung_agrees_across_in_process_backends_all_distributions() {
    for dist in ALL_DISTRIBUTIONS {
        let local = run_sketch_lifecycle(BackendChoice::LocalSpmd, dist);
        let mp = run_sketch_lifecycle(channel_mp(), dist);
        assert_eq!(
            local, mp,
            "{dist:?}: sketch-rung answers, guarantees and routing must be bit-identical"
        );
    }
}

#[test]
fn socket_mp_sketch_rung_matches_in_process_through_migration() {
    for dist in ALL_DISTRIBUTIONS {
        let local = run_sketch_lifecycle(BackendChoice::LocalSpmd, dist);
        let sock = run_sketch_lifecycle(socket_mp(), dist);
        assert_eq!(
            local, sock,
            "{dist:?}: the process boundary (and migration) must be invisible to the \
             sketch rung"
        );
    }
}

#[test]
fn socket_mp_self_heal_replaces_killed_worker_and_serves_survivors() {
    use cgselect::{Bounds, Request};
    let p = 4;
    let mut engine: Engine<u64> = Engine::new(cfg(p, socket_mp_faulty()).self_heal(true)).unwrap();
    let data: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(2654435761) % 1_000_003).collect();
    engine.ingest(data.clone()).unwrap();
    engine.execute(&[Query::Median]).unwrap();

    // One ingest from a fresh engine round-robins element i onto shard
    // i % p, so the post-crash surviving multiset is computable exactly.
    let killed = 2usize;
    let pids = engine.worker_pids();
    kill9(pids[killed]);
    let mut surviving: Vec<u64> =
        data.iter().enumerate().filter_map(|(i, &x)| (i % p != killed).then_some(x)).collect();
    surviving.sort_unstable();

    // "Detect, re-shard, keep serving": the run hits the dead worker,
    // recovers (respawn empty + fabric rewire + size resync) and retries —
    // the caller sees zero failed queries.
    let median = surviving[surviving.len() / 2];
    let lo = surviving[surviving.len() / 4];
    let hi = surviving[(3 * surviving.len()) / 4];
    let requests = vec![Request::rank_of(median), Request::count_between(Bounds::closed(lo, hi))];
    let report = engine.run(&requests).unwrap();
    let counts: Vec<u64> =
        report.outcomes.iter().map(|o| o.response.count().expect("count answer")).collect();
    let below = |v: u64| surviving.partition_point(|&x| x < v) as u64;
    let through = |v: u64| surviving.partition_point(|&x| x <= v) as u64;
    assert_eq!(counts, vec![below(median), through(hi) - below(lo)]);
    assert_eq!(engine.len(), surviving.len() as u64, "survivors' population must be exact");

    // The dead rank runs in a fresh process; the ring is back to full width
    // and exact batches serve the surviving multiset.
    let after = engine.worker_pids();
    assert_eq!(after.len(), p);
    assert_ne!(after[killed], pids[killed], "the killed rank must have been respawned");
    let queries = mixed_batch(surviving.len() as u64);
    let exact = engine.execute(&queries).unwrap();
    assert_eq!(exact.answers, oracle_answers(&surviving, &queries));
}
