//! # cgselect-engine — a persistent sharded selection/quantile query engine
//!
//! The paper's algorithms are one-shot: build a machine, select one rank,
//! tear everything down. This crate turns them into a long-lived service:
//! data is ingested once, stays **resident in shards on the `p` virtual
//! processors** (a pluggable [`ExecBackend`] whose worker threads survive
//! between calls — the in-process [`cgselect_runtime::Session`] by
//! default), and an unbounded stream of query batches is served against
//! it.
//!
//! What the engine adds over raw `parallel_select`:
//!
//! * **A typed query surface with inverse queries** — [`Engine::run`]
//!   takes [`Request`]s: forward rank-direction kinds (ranks, quantiles,
//!   multi-quantiles, median, min/max, top-k) *and* the inverse direction
//!   the paper's count-below-pivot primitive makes natural —
//!   [`QueryKind::RankOf`] (value → rank, a CDF point) and
//!   [`QueryKind::CountBetween`] (range → count) — each under an explicit
//!   [`Accuracy`] contract (`Exact` | `WithinRank` | `HistogramOk`).
//!   Every answer is an [`Outcome`]: the [`Response`] plus **provenance**
//!   ([`Served::Histogram`] / [`Served::Sketch`] / [`Served::Index`] /
//!   [`Served::Scan`]) and an attributed collective-op cost. The original
//!   closed [`Query`] enum still works: [`Engine::execute`] is a thin
//!   compatibility shim over the same path.
//! * **Batched execution** — a batch's rank-direction queries are
//!   coalesced into *one* deduplicated [`RankSet`] (contiguous runs, so
//!   `TopK(k)` plans in O(1)) and resolved by a single lockstep
//!   multi-select pass ([`cgselect_core::parallel_multi_select_windows`]):
//!   `R` rank queries cost `O(log n + R)` pivot rounds instead of
//!   `O(R·log n)`. All value probes of a batch share **one** vectorized
//!   `count_below` Combine round. Per-batch [`BatchReport`] /
//!   [`RunReport`] carry the measured [`cgselect_runtime::CommStats`], the
//!   collective-operation count and the virtual-time makespan.
//! * **A resident bucket index** — each shard keeps its data organized into
//!   buckets under *shared* sample-derived splitters, and the engine caches
//!   the global per-bucket histogram. A rank query localizes against the
//!   cached histogram to a small window of candidate buckets, the
//!   multi-select recursion runs **only over those candidate buckets,
//!   borrowed in place** (the per-batch full-shard clone + scan of the
//!   pre-index engine is gone), and windows that collapse to one
//!   repeated-value bucket are answered from the histogram alone — zero
//!   element scans, which is the steady state for repeated quantiles
//!   because resolved answers refine the splitters. The same cached
//!   histogram serves the inverse direction: a value probe the splitters
//!   bound is answered host-side with zero scans and zero collectives
//!   (and a batch fully resolved this way never consults the backend at
//!   all). Ingest appends to a
//!   small unindexed *delta run* that is merged amortized; rebalance
//!   rebuilds the splitters. See [`EngineConfig::index_buckets`],
//!   [`EngineConfig::delta_threshold`] and [`Engine::index_health`].
//! * **Incremental ingest/delete** with an **imbalance watermark**: shard
//!   sizes are tracked, and when `max/mean` exceeds
//!   [`EngineConfig::imbalance_watermark`] the engine re-balances with the
//!   configured [`cgselect_balance::Balancer`] — amortized, not per
//!   operation.
//! * **An approximate fast path** — every shard maintains a mergeable
//!   reservoir sketch of its data on ingest; quantile queries carrying a
//!   rank-error tolerance the sketches can honor are answered from the
//!   sketches alone, never touching the full data, and fall back to the
//!   exact paper algorithms otherwise.
//! * **An async frontend** ([`frontend`]) — concurrent clients submit
//!   single queries into a bounded [`SubmissionQueue`] and await
//!   [`Ticket`]s, while a dedicated batcher thread forms batches by
//!   deadline (micro-batching window + max batch size) so the coalescing
//!   above happens *across* clients, not just within one caller's slice.
//! * **Pluggable execution backends** ([`backend`]) — everything below the
//!   host-side planner (shard residency, collective execution,
//!   ingest/delete/rebalance, `CommStats` accounting) sits behind the
//!   [`ExecBackend`] trait, chosen via [`EngineConfig::backend`]: the
//!   in-process [`LocalSpmd`] session, or the message-passing
//!   [`ChannelMp`] worker ring whose every command and reply crosses a
//!   channel as a serialized byte frame (the dress rehearsal for
//!   out-of-process shards). Both run the identical per-shard code, so
//!   they produce identical answers *and* identical collective-round
//!   counts — enforced by `tests/backend_conformance.rs`.
//!
//! ```
//! use cgselect_engine::{Engine, EngineConfig, Query, Answer};
//!
//! let mut engine: Engine<u64> = Engine::new(EngineConfig::new(4)).unwrap();
//! engine.ingest((0..1000u64).rev().collect()).unwrap();
//!
//! let report = engine
//!     .execute(&[Query::Median, Query::Rank(10), Query::TopK(3)])
//!     .unwrap();
//! assert_eq!(report.answers[0], Answer::Value(499));
//! assert_eq!(report.answers[1], Answer::Value(10));
//! assert_eq!(report.answers[2], Answer::Top(vec![0, 1, 2]));
//! assert!(report.comm.collective_ops > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod frontend;
mod index;
mod measure;
pub mod obs;
mod query;
mod request;
pub mod sketch;
mod standing;

pub use backend::{
    BackendChoice, BackendError, BackendKind, BatchPlan, ChannelMp, ChannelMpTuning, ExecBackend,
    Fault, LocalSpmd, PhaseOps, RecoveryReport, ShardBatchOutcome, ShardDeletion, SocketMp,
    SocketMpTuning,
};
pub use frontend::{
    AsyncError, FrontendConfig, FrontendStats, MutationTicket, OutcomeTicket, QueryTicket,
    StandingTicket, SubmissionQueue, SubmitError, Ticket,
};
pub use index::{BucketStats, Group};
pub use measure::{measure_rounds, ExecutionMode, RoundsMeasurement};
pub use obs::{
    BatchSpan, MetricsRegistry, MetricsSnapshot, Phase, PhaseSpan, PhaseSummary, RequestSpan,
    SloAccumulator, SloPolicy, SloReport, TraceContext, TraceId,
};
pub use query::{quantile_rank, Answer, Query, RankSet};
pub use request::{
    Accuracy, Bounds, CostAttribution, Freshness, Outcome, QueryKind, Request, Response, RunReport,
    Served,
};
pub use sketch::{EpsSketch, ReservoirSketch};
pub use standing::{RefreshPolicy, StandingHandle, StandingUpdate, SubscriptionId};

use std::sync::Arc;

use cgselect_balance::Balancer;
use cgselect_core::SelectionConfig;
use cgselect_runtime::{CommStats, Key, MachineModel, RunError};

use index::{merge_stats, GlobalIndex};
use query::Resolution;

/// Configuration of a persistent engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of virtual processors (shards).
    pub nprocs: usize,
    /// Machine cost model for the virtual-time accounting.
    pub model: MachineModel,
    /// Tuning of the underlying selection algorithms (the multi-select
    /// pivot seed is re-derived per batch from `selection.seed`).
    pub selection: SelectionConfig,
    /// Strategy used when the imbalance watermark triggers a re-balance.
    pub balancer: Balancer,
    /// Re-balance when `max(shard)/mean(shard)` exceeds this (≥ 1.0).
    pub imbalance_watermark: f64,
    /// Compactor capacity of the deterministic ε-sketches (host-global and
    /// per-shard; 0 disables them, forcing every quantile to the exact
    /// path). Larger capacities tighten the provable rank-error bound —
    /// roughly `(n/k)·log₂(n/k)` — at proportional memory cost.
    pub sketch_capacity: usize,
    /// Target bucket count of the resident bucket index (0 disables the
    /// index: every exact batch scans the full resident data, as the
    /// pre-index engine did — the baseline the `engine` bench compares
    /// against). Adaptive refinement may grow the bucket count up to 4×
    /// this target before a rebuild is scheduled.
    pub index_buckets: usize,
    /// Fraction of the resident population that may sit in the unindexed
    /// delta run before a merge folds it into the buckets (a floor of 64
    /// elements applies, so tiny engines don't merge per ingest).
    pub delta_threshold: f64,
    /// Which execution backend realizes the engine's collective rounds
    /// (see [`backend`]): the in-process [`LocalSpmd`] session (default)
    /// or the message-passing [`ChannelMp`] worker ring.
    pub backend: BackendChoice,
    /// Enables end-to-end observability (see [`obs`]): request-scoped
    /// spans in every [`RunReport`], and a [`MetricsRegistry`] fed per
    /// batch. Off by default; when off the engine takes one branch per
    /// batch and records nothing.
    pub observe: bool,
    /// When set (and the backend supports membership, i.e. [`SocketMp`]),
    /// a failed [`Engine::run`] triggers one [`Engine::recover`] —
    /// respawning dead shard workers, re-wiring the fabric — and retries
    /// the batch once, so a killed worker means degraded data, not a dead
    /// engine. Off by default: the poisoning contract (rebuild the engine)
    /// stays strict unless explicitly opted into.
    pub self_heal: bool,
    /// Intra-shard scan fan-out: large per-shard scans split into this
    /// many chunks executed on scoped threads with a deterministic
    /// chunk-order reduction, so answers and modeled ops are independent
    /// of the setting (pinned by a twin-run test). Default 1 = fully
    /// sequential (the pre-knob behavior). Honored by the in-process
    /// [`LocalSpmd`] backend only; message-passing shard workers stay
    /// single-threaded. Recorded in every [`RunReport::scan_threads`] so
    /// SLO lines from differently-tuned engines stay comparable.
    pub scan_threads: usize,
}

impl EngineConfig {
    /// Defaults for a `p`-shard engine: CM-5 cost model, global-exchange
    /// re-balancing at watermark 1.5, 2048-sample sketches, a 64-bucket
    /// resident index with a 5% delta threshold.
    pub fn new(nprocs: usize) -> Self {
        EngineConfig {
            nprocs,
            model: MachineModel::cm5(),
            selection: SelectionConfig::default(),
            balancer: Balancer::GlobalExchange,
            imbalance_watermark: 1.5,
            sketch_capacity: 2048,
            index_buckets: 64,
            delta_threshold: 0.05,
            backend: BackendChoice::LocalSpmd,
            observe: false,
            self_heal: false,
            scan_threads: 1,
        }
    }

    /// Builder-style cost model choice.
    pub fn model(mut self, model: MachineModel) -> Self {
        self.model = model;
        self
    }

    /// Builder-style balancer choice.
    pub fn balancer(mut self, balancer: Balancer) -> Self {
        self.balancer = balancer;
        self
    }

    /// Builder-style watermark choice.
    pub fn imbalance_watermark(mut self, ratio: f64) -> Self {
        self.imbalance_watermark = ratio;
        self
    }

    /// Builder-style sketch capacity choice.
    pub fn sketch_capacity(mut self, capacity: usize) -> Self {
        self.sketch_capacity = capacity;
        self
    }

    /// Builder-style bucket-index target (0 disables the index).
    pub fn index_buckets(mut self, buckets: usize) -> Self {
        self.index_buckets = buckets;
        self
    }

    /// Builder-style delta-run merge threshold (fraction of the resident
    /// population).
    pub fn delta_threshold(mut self, fraction: f64) -> Self {
        self.delta_threshold = fraction;
        self
    }

    /// Builder-style execution-backend choice.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand: run on the message-passing [`ChannelMp`] backend with
    /// default tuning.
    pub fn channel_mp(self) -> Self {
        self.backend(BackendChoice::ChannelMp(ChannelMpTuning::default()))
    }

    /// Shorthand: run on the out-of-process [`SocketMp`] backend with
    /// default tuning (requires the `cgselect-shard-worker` binary on
    /// disk — built with the crate's bin targets — or the
    /// `CGSELECT_WORKER_BIN` environment variable naming it).
    pub fn socket_mp(self) -> Self {
        self.backend(BackendChoice::SocketMp(SocketMpTuning::default()))
    }

    /// Builder-style self-healing switch (see
    /// [`EngineConfig::self_heal`]).
    pub fn self_heal(mut self, enabled: bool) -> Self {
        self.self_heal = enabled;
        self
    }

    /// Builder-style observability switch (see [`obs`]).
    pub fn observe(mut self, enabled: bool) -> Self {
        self.observe = enabled;
        self
    }

    /// Builder-style intra-shard scan fan-out (see
    /// [`EngineConfig::scan_threads`]).
    pub fn scan_threads(mut self, threads: usize) -> Self {
        self.scan_threads = threads;
        self
    }

    fn validate(&self) {
        assert!(self.nprocs >= 1, "an engine needs at least one shard");
        assert!(self.scan_threads >= 1, "scan_threads must be >= 1 (1 = sequential scans)");
        assert!(
            self.imbalance_watermark >= 1.0,
            "imbalance watermark must be >= 1.0 (max/mean ratio), got {}",
            self.imbalance_watermark
        );
        assert!(
            self.delta_threshold.is_finite() && self.delta_threshold >= 0.0,
            "delta threshold must be a finite non-negative fraction, got {}",
            self.delta_threshold
        );
        self.selection.validate();
    }

    /// Refinement may grow the bucket count this far before the index is
    /// marked for a rebuild.
    fn bucket_cap(&self) -> usize {
        (self.index_buckets * 4).max(self.index_buckets + 16)
    }
}

/// Errors surfaced to engine callers.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A query was submitted while no data is resident.
    Empty,
    /// `Query::Rank` beyond the resident population.
    RankOutOfRange {
        /// The requested 0-based rank.
        rank: u64,
        /// The resident population.
        n: u64,
    },
    /// `Query::Quantile` outside `[0, 1]`.
    InvalidQuantile(f64),
    /// A rank-error tolerance that is negative, NaN, or infinite.
    InvalidTolerance(f64),
    /// `Query::TopK` larger than the resident population.
    TopKTooLarge {
        /// The requested k.
        k: u64,
        /// The resident population.
        n: u64,
    },
    /// The underlying SPMD session failed (and is now poisoned).
    Runtime(RunError),
    /// The execution backend failed at the [`ExecBackend`] boundary —
    /// worker panic, lost reply, or a poisoned backend rejecting further
    /// work. Mirrors [`RunError::SessionPoisoned`] semantics: the engine
    /// must be rebuilt.
    Backend(BackendError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Empty => write!(f, "query on an empty engine"),
            EngineError::RankOutOfRange { rank, n } => {
                write!(f, "rank {rank} out of range for {n} resident elements")
            }
            EngineError::InvalidQuantile(q) => {
                write!(f, "quantile {q} outside [0, 1]")
            }
            EngineError::InvalidTolerance(t) => {
                write!(f, "invalid rank-error tolerance {t} (must be finite and >= 0)")
            }
            EngineError::TopKTooLarge { k, n } => {
                write!(f, "top-k of {k} exceeds the {n} resident elements")
            }
            EngineError::Runtime(e) => write!(f, "runtime failure: {e}"),
            EngineError::Backend(e) => write!(f, "backend failure: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> Self {
        EngineError::Runtime(e)
    }
}

impl From<BackendError> for EngineError {
    fn from(e: BackendError) -> Self {
        match e {
            // In-process runtime failures keep their pre-backend shape.
            BackendError::Runtime(e) => EngineError::Runtime(e),
            other => EngineError::Backend(other),
        }
    }
}

/// What one batch execution did and cost.
#[derive(Clone, Debug)]
pub struct BatchReport<T> {
    /// Per-query answers, aligned with the submitted batch.
    pub answers: Vec<Answer<T>>,
    /// Communication this batch moved, summed over all processors
    /// (`collective_ops` is summed too; divide by `nprocs` for the
    /// per-processor SPMD count).
    pub comm: CommStats,
    /// Collective operations the batch started, per processor (identical
    /// on every rank by SPMD discipline) — the "collective rounds" to
    /// compare batched against per-query execution.
    pub collective_ops: u64,
    /// Virtual-time makespan of the batch under the engine's cost model.
    pub makespan: f64,
    /// How many distinct ranks the coalesced multi-select pass resolved.
    pub exact_ranks: usize,
    /// How many queries were served from the sketches.
    pub sketch_answers: usize,
    /// How many of the distinct exact ranks were answered from the cached
    /// bucket histogram alone (zero element scans).
    pub histogram_answers: usize,
    /// Fraction of the resident population sitting in the unindexed delta
    /// run when this batch executed (0.0 when the index is disabled).
    pub delta_occupancy: f64,
}

/// What one ingest/delete did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationReport {
    /// Elements added (ingest) or removed (delete).
    pub elements: u64,
    /// Whether the imbalance watermark triggered a re-balance afterwards.
    pub rebalanced: bool,
}

/// Health snapshot of the resident bucket index (see
/// [`Engine::index_health`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IndexHealth {
    /// Current global bucket count (0 while no index is built).
    pub buckets: usize,
    /// Unindexed delta-run elements across all shards.
    pub delta_len: u64,
    /// `delta_len / resident population` (0.0 when empty).
    pub delta_occupancy: f64,
    /// Index (re)builds so far — the initial build counts as one; further
    /// rebuilds come from rebalances and refinement growing past the cap.
    pub rebuilds: u64,
    /// Amortized delta-run merges so far.
    pub delta_merges: u64,
    /// Exact ranks answered from the histogram alone, cumulatively.
    pub histogram_hits: u64,
}

/// A persistent sharded selection/quantile engine over element type `T`.
///
/// See the crate docs for the architecture; construction spawns the
/// configured [`ExecBackend`]'s `p` worker threads, which stay alive (and
/// keep the shards resident) until the engine is dropped — drop joins them.
pub struct Engine<T: Key> {
    backend: Box<dyn ExecBackend<T>>,
    cfg: EngineConfig,
    shard_sizes: Vec<u64>,
    total: u64,
    rebalances: u64,
    batches: u64,
    ingest_cursor: usize,
    /// Host-side cached global histogram of the shared buckets.
    index: Option<GlobalIndex<T>>,
    /// Set when the splitters are stale (rebalance, refinement growth).
    index_dirty: bool,
    index_rebuilds: u64,
    delta_merges: u64,
    histogram_hits: u64,
    /// Host-global deterministic ε-sketch over the resident multiset: fed
    /// incrementally at ingest, rebuilt by merging the shards' exports
    /// after any operation that removes elements (delete, recovery). Every
    /// sketch-rung answer is served from it with zero collectives.
    sketch: EpsSketch<T>,
    /// Live only when `cfg.observe` is set: the metrics registry every
    /// batch reports into, shared with the frontend's batcher thread.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Registered standing queries (see [`Engine::subscribe`]); due
    /// subscriptions ride every [`Engine::run`] batch.
    standing: standing::StandingRegistry<T>,
    /// Mutation version: increments on every ingest/delete that changed
    /// the multiset, and on recovery (which loses data). Two outcomes with
    /// equal versions were computed against identical resident data.
    version: u64,
    /// Cumulative elements mutated (ingested + deleted) — the churn meter
    /// behind [`RefreshPolicy::OnDelta`].
    mutated: u64,
    standing_refreshes: u64,
    standing_zero_collective: u64,
}

/// An [`Engine`] is `Send` no matter the backend: the async frontend hands
/// it — resident shards, live worker threads and all — to its dedicated
/// batcher thread. This assertion makes the guarantee a compile-time
/// contract so a future backend cannot silently revoke it.
const _: () = {
    const fn assert_send<S: Send>() {}
    assert_send::<Engine<u64>>();
};

impl<T: Key> Engine<T> {
    /// Starts an engine: spawns the configured backend's workers and
    /// installs empty shards.
    pub fn new(cfg: EngineConfig) -> Result<Self, EngineError> {
        cfg.validate();
        let backend: Box<dyn ExecBackend<T>> = match &cfg.backend {
            BackendChoice::LocalSpmd => Box::new(LocalSpmd::<T>::start(&cfg)?),
            BackendChoice::ChannelMp(tuning) => {
                Box::new(ChannelMp::<T>::start(&cfg, tuning.clone()))
            }
            BackendChoice::SocketMp(tuning) => {
                Box::new(SocketMp::<T>::start(&cfg, tuning.clone())?)
            }
        };
        Ok(Engine {
            shard_sizes: vec![0; cfg.nprocs],
            total: 0,
            rebalances: 0,
            batches: 0,
            ingest_cursor: 0,
            index: None,
            index_dirty: false,
            index_rebuilds: 0,
            delta_merges: 0,
            histogram_hits: 0,
            metrics: cfg.observe.then(|| Arc::new(MetricsRegistry::new())),
            sketch: EpsSketch::new(cfg.sketch_capacity),
            standing: standing::StandingRegistry::default(),
            version: 0,
            mutated: 0,
            standing_refreshes: 0,
            standing_zero_collective: 0,
            backend,
            cfg,
        })
    }

    /// The engine's metrics registry — `Some` only when the engine was
    /// configured with [`EngineConfig::observe`]. Cloning the `Arc` lets
    /// frontends and exporters read snapshots while the engine runs.
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.clone()
    }

    /// Which execution backend this engine runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Number of shards (= virtual processors).
    pub fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    /// Resident population.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no data is resident.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Current per-shard element counts.
    pub fn shard_sizes(&self) -> &[u64] {
        &self.shard_sizes
    }

    /// How many watermark-triggered re-balances have run.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// How many query batches have executed.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Health snapshot of the resident bucket index.
    pub fn index_health(&self) -> IndexHealth {
        let (buckets, delta_len) = match &self.index {
            Some(g) => (g.num_buckets(), g.delta_total),
            None => (0, 0),
        };
        IndexHealth {
            buckets,
            delta_len,
            delta_occupancy: if self.total == 0 {
                0.0
            } else {
                delta_len as f64 / self.total as f64
            },
            rebuilds: self.index_rebuilds,
            delta_merges: self.delta_merges,
            histogram_hits: self.histogram_hits,
        }
    }

    /// Current `max/mean` shard-size ratio (1.0 when empty or perfectly
    /// balanced).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let max = *self.shard_sizes.iter().max().expect("nprocs >= 1") as f64;
        let mean = self.total as f64 / self.cfg.nprocs as f64;
        max / mean
    }

    /// Ingests `items`, spread round-robin across the shards (the cursor
    /// persists, so successive small ingests stay balanced). Sketches are
    /// maintained incrementally, the new elements join the index's delta
    /// run, and the watermark is checked afterwards.
    pub fn ingest(&mut self, items: Vec<T>) -> Result<MutationReport, EngineError> {
        let p = self.cfg.nprocs;
        let count = items.len();
        let mut chunks: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (i, x) in items.into_iter().enumerate() {
            chunks[(self.ingest_cursor + i) % p].push(x);
        }
        self.ingest_cursor = (self.ingest_cursor + count) % p;
        self.ingest_chunks(chunks)
    }

    /// Ingests `items` entirely into shard `rank` — the "hot receiver"
    /// pattern (data arriving on one node). This is what drives the
    /// imbalance watermark in practice.
    ///
    /// # Panics
    /// Panics if `rank >= nprocs()`.
    pub fn ingest_pinned(
        &mut self,
        rank: usize,
        items: Vec<T>,
    ) -> Result<MutationReport, EngineError> {
        assert!(rank < self.cfg.nprocs, "shard {rank} out of range");
        let mut chunks: Vec<Vec<T>> = (0..self.cfg.nprocs).map(|_| Vec::new()).collect();
        chunks[rank] = items;
        self.ingest_chunks(chunks)
    }

    fn ingest_chunks(&mut self, chunks: Vec<Vec<T>>) -> Result<MutationReport, EngineError> {
        let added: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        // The host-global ε-sketch sees every element before the chunks
        // move to the shards, so sketch-rung batches never need a
        // collective to stay current.
        for chunk in &chunks {
            for &x in chunk {
                self.sketch.offer(x);
            }
        }
        // The host's delta mirror sees the same elements: the index keeps
        // serving exactly through the pending delta without a collective.
        let delta_note: Vec<T> = if self.index.is_some() {
            chunks.iter().flatten().copied().collect()
        } else {
            Vec::new()
        };
        // Appends land past the indexed prefix, so they *are* the delta
        // run; no index restructuring happens here.
        let sizes = self.backend.ingest(chunks)?;
        self.set_sizes(sizes);
        if let Some(gidx) = &mut self.index {
            gidx.note_ingest(delta_note);
        }
        if added > 0 {
            self.version += 1;
            self.mutated += added;
        }
        let rebalanced = self.maybe_rebalance()?;
        if !rebalanced {
            self.maybe_merge_delta()?;
        }
        Ok(MutationReport { elements: added, rebalanced })
    }

    /// Deletes **all** resident occurrences of the given values, returning
    /// how many elements were removed. The bucket index and its histogram
    /// are maintained in place; shard sketches are rebuilt and the
    /// watermark is checked afterwards.
    pub fn delete(&mut self, values: &[T]) -> Result<MutationReport, EngineError> {
        if values.is_empty() || self.total == 0 {
            return Ok(MutationReport { elements: 0, rebalanced: false });
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // One compacting pass per shard; every comparison of the
        // per-element binary search and every element move is counted,
        // matching how the selection kernels charge their measured work.
        let results = self.backend.delete(sorted.clone())?;
        let before = self.total;
        let (sizes, removed): (Vec<u64>, Vec<Vec<u64>>) =
            results.into_iter().map(|d| (d.remaining, d.removed)).unzip();
        self.set_sizes(sizes);
        if let Some(gidx) = &mut self.index {
            gidx.apply_removals(&removed);
            gidx.note_delete(&sorted);
        }
        let removed_total = before - self.total;
        if removed_total > 0 {
            self.version += 1;
            self.mutated += removed_total;
            self.refresh_sketch()?;
        }
        let rebalanced = self.maybe_rebalance()?;
        Ok(MutationReport { elements: removed_total, rebalanced })
    }

    /// Checks one v1 query's domain against the current resident
    /// population without executing it — the compatibility twin of
    /// [`Engine::validate_request`].
    pub fn validate_query(&self, query: &Query) -> Result<(), EngineError> {
        query::validate(query, self.total)
    }

    /// Checks one v2 request's domain against the current resident
    /// population without executing it — exactly the validation
    /// [`Engine::run`] applies to a whole batch, exposed per request so
    /// the async frontend can fail an invalid request's ticket without
    /// failing its batch.
    pub fn validate_request(&self, request: &Request<T>) -> Result<(), EngineError> {
        query::validate_request(request, self.total)
    }

    /// Hands this engine (and its persistent session) to a dedicated
    /// batcher thread and returns the async [`SubmissionQueue`] frontend.
    /// Shorthand for [`SubmissionQueue::start`].
    pub fn into_frontend(self, cfg: FrontendConfig) -> SubmissionQueue<T> {
        SubmissionQueue::start(self, cfg)
    }

    // --- Standing queries (see [`standing`](crate::StandingHandle)) ----

    /// Registers `request` as a **standing query**: it re-evaluates under
    /// `policy` whenever the resident data moves, streaming stamped
    /// [`StandingUpdate`]s to the returned [`StandingHandle`]. Refreshes
    /// ride ordinary [`Engine::run`] batches (or an explicit
    /// [`Engine::refresh_standing`]), sharing their collective rounds; a
    /// refresh whose candidate window did not move is re-served from the
    /// delta-rebased histogram or the ε-sketch at **zero collectives**.
    ///
    /// The request is *not* validated against the current population — a
    /// dashboard may subscribe before any data arrives; refreshes are
    /// simply skipped while the request is invalid (e.g. an empty engine),
    /// without burning sequence numbers.
    ///
    /// ```
    /// use cgselect_engine::{Engine, EngineConfig, RefreshPolicy, Request};
    ///
    /// let mut engine: Engine<u64> = Engine::new(EngineConfig::new(2)).unwrap();
    /// let handle = engine.subscribe(Request::quantile(0.99), RefreshPolicy::EveryBatch);
    /// engine.ingest((0..1000u64).collect()).unwrap();
    /// let delivered = engine.refresh_standing().unwrap();
    /// assert_eq!(delivered, 1);
    /// let update = handle.recv().unwrap();
    /// assert_eq!(update.seq, 0);
    /// assert_eq!(update.outcome.freshness.elements, 1000);
    /// ```
    pub fn subscribe(&mut self, request: Request<T>, policy: RefreshPolicy) -> StandingHandle<T> {
        if let RefreshPolicy::OnDelta(frac) = policy {
            assert!(
                frac.is_finite() && frac >= 0.0,
                "OnDelta fraction must be finite and >= 0, got {frac}"
            );
        }
        let handle = self.standing.subscribe(request, policy);
        if let Some(m) = &self.metrics {
            m.gauge_set("standing_active", self.standing.len() as f64);
        }
        handle
    }

    /// Removes the standing query `id`; its handle's stream ends. Returns
    /// `false` if the id was unknown (or already auto-unsubscribed by a
    /// dropped handle).
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let removed = self.standing.unsubscribe(id);
        if let Some(m) = &self.metrics {
            m.gauge_set("standing_active", self.standing.len() as f64);
        }
        removed
    }

    /// Number of live standing queries.
    pub fn standing_active(&self) -> usize {
        self.standing.len()
    }

    /// Flushes due standing queries without a foreground batch (an empty
    /// [`Engine::run`]), returning how many updates were delivered. Cheap
    /// when nothing is due: returns immediately without planning a batch,
    /// so idle pollers (the frontend's batcher serving
    /// [`RefreshPolicy::Deadline`]) can call it every tick.
    pub fn refresh_standing(&mut self) -> Result<u64, EngineError> {
        let any_serviceable = self
            .standing
            .due_requests(self.version, self.mutated, self.total)
            .iter()
            .any(|(_, r)| query::validate_request(r, self.total).is_ok());
        if !any_serviceable {
            return Ok(0);
        }
        let before = self.standing_refreshes;
        self.run(&[])?;
        Ok(self.standing_refreshes - before)
    }

    /// Cumulative standing-query updates delivered.
    pub fn standing_refreshes(&self) -> u64 {
        self.standing_refreshes
    }

    /// How many of [`Engine::standing_refreshes`] were served without a
    /// single attributed collective op (rebased histogram / ε-sketch).
    pub fn standing_zero_collective(&self) -> u64 {
        self.standing_zero_collective
    }

    /// The engine's current mutation version (see [`Freshness::version`]).
    pub fn mutation_version(&self) -> u64 {
        self.version
    }

    /// Executes one batch of v1 [`Query`]s against the resident data —
    /// a thin compatibility shim over [`Engine::run`]: each query is
    /// lowered by [`Query::to_request`], the batch runs on the v2 path,
    /// and the typed [`Outcome`]s are folded back into v1 [`Answer`]s.
    /// Old callers compile and behave unchanged.
    pub fn execute(&mut self, queries: &[Query]) -> Result<BatchReport<T>, EngineError> {
        let requests: Vec<Request<T>> = queries.iter().map(Query::to_request).collect();
        let run = self.run(&requests)?;
        let answers =
            run.outcomes.into_iter().map(|o| query::answer_from_response(o.response)).collect();
        Ok(BatchReport {
            answers,
            comm: run.comm,
            collective_ops: run.collective_ops,
            makespan: run.makespan,
            exact_ranks: run.exact_ranks,
            sketch_answers: run.sketch_answers,
            histogram_answers: run.histogram_answers,
            delta_occupancy: run.delta_occupancy,
        })
    }

    /// The deterministic error guarantees the resident host-global
    /// ε-sketch can currently honor (`None` when sketches are disabled).
    /// The planner routes a `WithinRank(t)` request to the sketch rung iff
    /// `rank ≤ ⌈t·n⌉` — the served answer then carries `rank` as its
    /// *guaranteed* maximum rank error.
    fn sketch_guarantee(&self) -> Option<query::SketchErr> {
        (self.cfg.sketch_capacity > 0).then(|| query::SketchErr {
            rank: self.sketch.rank_error_bound(),
            count: self.sketch.count_error_bound(),
        })
    }

    /// Rebuilds the host-global ε-sketch by merging every shard's resident
    /// sketch ([`EpsSketch::merge`] is closed under the error bound), after
    /// an operation that removed elements from the multiset.
    fn refresh_sketch(&mut self) -> Result<(), EngineError> {
        let mut merged = EpsSketch::new(self.cfg.sketch_capacity);
        for shard in self.backend.export_sketches()? {
            merged.merge(&shard);
        }
        self.sketch = merged;
        Ok(())
    }

    /// Executes one batch of typed v2 [`Request`]s against the resident
    /// data (see [`request`](crate::Request) for the surface).
    ///
    /// Rank-direction requests are coalesced into one deduplicated
    /// [`RankSet`]; each rank localizes against the cached bucket
    /// histogram (answered outright when its candidate window is a single
    /// repeated-value bucket) and the remainder resolves in a single
    /// lockstep multi-select pass over candidate buckets borrowed in
    /// place. Value-direction requests ([`QueryKind::RankOf`],
    /// [`QueryKind::CountBetween`]) coalesce their endpoints into one
    /// probe list: probes the histogram's splitters bound are answered
    /// host-side with **zero data scans** (provenance
    /// [`Served::Histogram`]), and the rest cost **one vectorized Combine
    /// round for the whole probe batch**, no matter how many probes.
    /// Requests whose [`Accuracy`] contract the sketches can honor are
    /// served from the sketches without touching the full data. A batch
    /// fully resolved from the histogram skips the backend entirely (zero
    /// collectives). Outcomes are aligned with `requests`, each carrying
    /// its answer, provenance and attributed collective-op cost.
    ///
    /// ```
    /// use cgselect_engine::{Bounds, Engine, EngineConfig, Request, Served};
    ///
    /// let mut engine: Engine<u64> = Engine::new(EngineConfig::new(4)).unwrap();
    /// engine.ingest((0..1000u64).rev().collect()).unwrap();
    /// let report = engine
    ///     .run(&[
    ///         Request::median(),
    ///         Request::rank_of(250),
    ///         Request::count_between(Bounds::closed(100, 199)),
    ///     ])
    ///     .unwrap();
    /// assert_eq!(report.outcomes[0].response.element(), Some(499));
    /// assert_eq!(report.outcomes[1].response.count(), Some(250));
    /// assert_eq!(report.outcomes[2].response.count(), Some(100));
    /// assert!(report.outcomes[0].served <= Served::Scan);
    /// ```
    ///
    /// With [`EngineConfig::self_heal`] set on a membership-capable
    /// backend, a batch that fails at the execution boundary triggers one
    /// [`Engine::recover`] and retries once; request-validation errors
    /// never trigger recovery.
    pub fn run(&mut self, requests: &[Request<T>]) -> Result<RunReport<T>, EngineError> {
        match self.run_once(requests) {
            Err(e @ (EngineError::Backend(_) | EngineError::Runtime(_)))
                if self.cfg.self_heal && self.backend.supports_membership() =>
            {
                if self.recover().is_err() {
                    return Err(e);
                }
                self.run_once(requests)
            }
            other => other,
        }
    }

    /// One batch attempt (the whole pipeline documented on
    /// [`Engine::run`], without the self-healing retry).
    fn run_once(&mut self, requests: &[Request<T>]) -> Result<RunReport<T>, EngineError> {
        // -- Standing admission: subscriptions due under the current
        // mutation state append their requests to the caller's batch, so a
        // refresh shares the batch's probe Combine, multi-select pass and
        // splitter refinement instead of paying its own rounds. A
        // subscription whose request is invalid *right now* (e.g. a rank
        // beyond a shrunk population) is skipped, never failing the batch.
        let user_len = requests.len();
        let due: Vec<(SubscriptionId, Request<T>)> = self
            .standing
            .due_requests(self.version, self.mutated, self.total)
            .into_iter()
            .filter(|(_, r)| query::validate_request(r, self.total).is_ok())
            .collect();
        let combined: Vec<Request<T>>;
        let requests: &[Request<T>] = if due.is_empty() {
            requests
        } else {
            combined = requests.iter().cloned().chain(due.iter().map(|(_, r)| r.clone())).collect();
            &combined
        };
        let plan = query::plan_requests(requests, self.total, self.sketch_guarantee())?;
        // Fail fast on a poisoned backend even when the batch could be
        // served from the host-side histogram alone: the poisoning
        // contract (rebuild the engine) must not depend on which cache a
        // batch happens to hit.
        if self.backend.is_poisoned() {
            return Err(EngineError::Backend(BackendError::Poisoned));
        }
        let needs_hist_ranks =
            plan.resolutions.iter().any(|r| matches!(r, Resolution::HistRank { .. }));
        if self.cfg.index_buckets > 0
            && (!plan.exact_ranks.is_empty() || !plan.probes.is_empty() || needs_hist_ranks)
        {
            self.ensure_index()?;
        }

        // Per-batch pivot seed: deterministic, but decorrelated across
        // batches so one unlucky stream cannot haunt every batch.
        let mut sel_cfg = self.cfg.selection.clone();
        sel_cfg.seed ^= (self.batches + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        self.batches += 1;

        // Observability admission: every request keeps its stamped trace ID
        // or is assigned one here, and the batch context flows into the
        // plan (and, on the message-passing backend, across the wire).
        let wall_start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let trace_ctx = self.metrics.is_some().then(|| {
            let ids: Vec<TraceId> =
                requests.iter().map(|r| r.trace.unwrap_or_else(TraceId::next)).collect();
            let root = ids.first().copied().unwrap_or_else(TraceId::next);
            (TraceContext { batch: self.batches, root }, ids)
        });

        let n = self.total;
        let use_index = self.index.is_some();
        let exact_served = if use_index { Served::Index } else { Served::Scan };

        // -- Host-side value-probe routing against the cached histogram:
        // zero collectives. A probe whose bracket is exact never reaches
        // any backend; the rest are split per the owning request's
        // accuracy contract.
        let probe_brackets: Vec<(u64, u64)> = plan
            .probes
            .iter()
            .map(|&(v, inclusive)| match &self.index {
                Some(gidx) => gidx.count_bounds(v, inclusive),
                None => (0, n),
            })
            .collect();
        let probe_exact: Vec<Option<u64>> =
            probe_brackets.iter().map(|&(lo, hi)| (lo == hi).then_some(lo)).collect();

        let mut probe_backend = vec![false; plan.probes.len()];
        let mut probe_sketch = vec![false; plan.probes.len()];
        let mut count_routes: Vec<Option<CountRoute>> = vec![None; plan.resolutions.len()];
        for (i, res) in plan.resolutions.iter().enumerate() {
            let Resolution::Count(c) = res else { continue };
            let endpoints = [c.minuend, c.subtrahend];
            let route = if c.empty {
                CountRoute::Empty
            } else if endpoints.iter().flatten().all(|&p| probe_exact[p].is_some()) {
                CountRoute::Histogram
            } else if c.histogram_ok && use_index {
                CountRoute::HistogramApprox
            } else if c.sketch_error.is_some() {
                for p in endpoints.into_iter().flatten() {
                    probe_sketch[p] |= probe_exact[p].is_none();
                }
                CountRoute::Sketch
            } else {
                for p in endpoints.into_iter().flatten() {
                    probe_backend[p] |= probe_exact[p].is_none();
                }
                CountRoute::Backend
            };
            count_routes[i] = Some(route);
        }
        let (value_probes, probe_backend_pos) = sublist(&plan.probes, &probe_backend);
        let value_probes = Arc::new(value_probes);
        let (sketch_probes, probe_sketch_pos) = sublist(&plan.probes, &probe_sketch);

        // -- ε-sketch serving, entirely host-side: rank targets and probe
        // estimates come straight off the resident global sketch, so the
        // sketch rung costs zero collectives no matter the backend. The
        // planner already checked the guarantee against each contract.
        let sketch_values: Vec<T> =
            plan.sketch_targets.iter().map(|&r| self.sketch.query_rank(r)).collect();
        let sketch_ranks: Vec<u64> =
            sketch_probes.iter().map(|&(v, inclusive)| self.sketch.rank_of(v, inclusive)).collect();

        // -- Histogram-contract rank requests: serve from the cached
        // histogram when a single bucket bounds the target, fall back to
        // the exact rank set otherwise.
        let mut hist_rank_served: Vec<Option<(T, u64)>> = vec![None; plan.resolutions.len()];
        let mut fallback_ranks: Vec<u64> = Vec::new();
        for (i, res) in plan.resolutions.iter().enumerate() {
            let Resolution::HistRank { target_rank } = res else { continue };
            match self.index.as_ref().and_then(|g| g.approx_value(*target_rank)) {
                Some(answer) => hist_rank_served[i] = Some(answer),
                None => fallback_ranks.push(*target_rank),
            }
        }
        fallback_ranks.sort_unstable();
        fallback_ranks.dedup();
        let residual = Arc::new(plan.exact_ranks.union_points(&fallback_ranks));

        // -- Rank routing against the cached histogram: zero collectives.
        let (groups, fast): (Arc<Vec<Group>>, Vec<(usize, T)>) = match &self.index {
            Some(gidx) if !residual.is_empty() => {
                let routing = gidx.route(residual.iter());
                (Arc::new(routing.groups), routing.fast)
            }
            _ => (Arc::new(Vec::new()), Vec::new()),
        };
        let delta_total = self.index.as_ref().map_or(0, |g| g.delta_total);
        let delta_occupancy = self.index_health().delta_occupancy;

        // -- The backend-independent batch plan: the shards' half of the
        // work (the vectorized probe Combine, delta localization, borrowed
        // candidate windows, the lockstep multi-select, answer refinement)
        // runs wherever the configured [`ExecBackend`] keeps the shards. A
        // batch fully resolved host-side — histogram hits and the whole
        // sketch rung — skips the backend entirely: zero collectives, zero
        // scans.
        let backend_needed =
            !groups.is_empty() || !value_probes.is_empty() || (!use_index && !residual.is_empty());
        let outcomes = if backend_needed {
            let batch_plan = BatchPlan {
                groups: groups.clone(),
                exact_ranks: residual.clone(),
                value_probes: value_probes.clone(),
                selection: sel_cfg,
                use_index,
                full_total: n,
                delta_total,
                trace: trace_ctx.as_ref().map(|(ctx, _)| *ctx),
            };
            self.backend.execute(&batch_plan)?
        } else {
            Vec::new()
        };

        let mut comm = CommStats::default();
        let mut makespan = 0.0f64;
        for o in &outcomes {
            comm = comm.merged(&o.comm);
            makespan = makespan.max(o.elapsed);
        }

        // Fold the refinement back into the cached histogram, replaying
        // the shards' bound splices in lockstep so the host mirror of the
        // shared splitter array stays bit-identical to every shard's:
        // group refines first (descending), then the probe carves in plan
        // order — exactly the order `execute_shard` applied them.
        if use_index && !outcomes.is_empty() {
            let gidx = self.index.as_mut().expect("index cached");
            for (g, group) in groups.iter().enumerate().rev() {
                let answers: Vec<T> = group
                    .out
                    .iter()
                    .map(|&slot| outcomes[0].exact[slot].expect("group ranks resolved"))
                    .collect();
                gidx.refine_window_bounds(group.lo, group.hi, &answers);
                let mut merged = outcomes[0].refines[g].clone();
                for o in &outcomes[1..] {
                    merge_stats(&mut merged, &o.refines[g]);
                }
                gidx.splice_window(group.lo, group.hi, &merged);
            }
            // Probe-driven refinement: a resolved probe carves its
            // `(v,<)(v,≤)` equality-class pair host-side iff the shards
            // carved it (the skip test depends only on the shared bounds,
            // so both sides agree without any extra communication).
            let mut carved = 0usize;
            for &(v, _) in value_probes.iter() {
                if let Some(b) = gidx.refine_probe_bounds(v) {
                    let mut merged = outcomes[0].probe_refines[carved].clone();
                    for o in &outcomes[1..] {
                        merge_stats(&mut merged, &o.probe_refines[carved]);
                    }
                    gidx.splice_window(b, b, &merged);
                    carved += 1;
                }
            }
            debug_assert_eq!(
                carved,
                outcomes[0].probe_refines.len(),
                "host probe replay must carve exactly the buckets the shards did"
            );
            gidx.rebuild_prefix();
            gidx.reclassify_delta();
            if gidx.num_buckets() > self.cfg.bucket_cap() {
                self.index_dirty = true;
            }
        }

        // -- Assemble the per-request outcomes.
        let mut exact_slots: Vec<Option<T>> = match outcomes.first() {
            Some(rank0) => rank0.exact.clone(),
            None => vec![None; residual.len()],
        };
        let mut slot_fast = vec![false; residual.len()];
        for &(slot, v) in &fast {
            exact_slots[slot] = Some(v);
            slot_fast[slot] = true;
        }
        let exact_values: Vec<T> = exact_slots
            .into_iter()
            .map(|v| v.expect("every coalesced rank must have been resolved"))
            .collect();
        let assembled = assemble_outcomes(
            &plan,
            &AssemblyContext {
                n,
                residual: &residual,
                exact_values: &exact_values,
                slot_fast: &slot_fast,
                exact_served,
                probe_brackets: &probe_brackets,
                probe_exact: &probe_exact,
                probe_backend_pos: &probe_backend_pos,
                probe_sketch_pos: &probe_sketch_pos,
                count_routes: &count_routes,
                hist_rank_served: &hist_rank_served,
                sketch_values: &sketch_values,
                sketch_ranks: &sketch_ranks,
                rank0: outcomes.first(),
                freshness: Freshness { version: self.version, elements: n },
            },
        );
        let histogram_answers = fast.len()
            + assembled
                .outcomes
                .iter()
                .zip(&plan.resolutions)
                .filter(|(o, res)| {
                    o.served == Served::Histogram
                        && matches!(res, Resolution::HistRank { .. } | Resolution::Count(_))
                })
                .count();
        self.histogram_hits += histogram_answers as u64;

        let collective_ops = outcomes.first().map_or(0, |o| o.comm.collective_ops);

        // -- Span assembly + metrics: link each outcome back to the phases
        // it paid for, and feed the registry. All of it is behind the one
        // `observe` branch; a non-observing engine does none of this work.
        let span = trace_ctx.map(|(ctx, ids)| {
            let shard_spans: Vec<Vec<PhaseSpan>> =
                outcomes.iter().map(|o| o.spans.clone()).collect();
            let request_spans = ids
                .into_iter()
                .zip(requests)
                .zip(assembled.outcomes.iter().zip(&assembled.units))
                .map(|((trace, req), (outcome, units))| RequestSpan {
                    trace,
                    kind: req.kind.label(),
                    served: outcome.served,
                    phases: Phase::ALL
                        .into_iter()
                        .zip(units)
                        .filter(|&(_, u)| *u > 0)
                        .map(|(p, _)| p)
                        .collect(),
                    collective_ops: outcome.cost.collective_ops,
                })
                .collect();
            BatchSpan {
                batch: ctx.batch,
                root: ctx.root,
                requests: request_spans,
                phases: obs::summarize_phases(&shard_spans),
            }
        });
        if let Some(m) = &self.metrics {
            m.counter_add("requests_total", requests.len() as u64);
            m.counter_add("batches_total", 1);
            m.counter_add("collective_ops_total", collective_ops);
            for o in &assembled.outcomes {
                m.counter_add(
                    match o.served {
                        Served::Histogram => "served_histogram",
                        Served::Sketch => "served_sketch",
                        Served::Index => "served_index",
                        Served::Scan => "served_scan",
                    },
                    1,
                );
            }
            m.histogram_observe("batch_occupancy", requests.len() as u64);
            m.gauge_set("delta_occupancy", delta_occupancy);
            m.latency_observe("batch_virtual", (makespan * 1e9) as u64);
            if let Some(t0) = wall_start {
                m.latency_observe("batch_wall", t0.elapsed().as_nanos() as u64);
            }
        }

        // -- Standing delivery: the batch's tail outcomes belong to the due
        // subscriptions, in admission order. Each update carries the next
        // gap-free sequence number and this batch's freshness stamp; a
        // dropped handle auto-unsubscribes here. Refreshes whose outcome
        // cost zero attributed collective ops (histogram / sketch served)
        // are counted separately — the incremental-refresh win.
        let mut outcomes = assembled.outcomes;
        let standing_outcomes = outcomes.split_off(user_len);
        let mut delivered = 0u64;
        let mut zero_collective = 0u64;
        for ((id, _), outcome) in due.iter().zip(standing_outcomes) {
            let zero = outcome.cost.collective_ops == 0.0;
            if self.standing.deliver(*id, outcome, self.version, self.mutated) {
                delivered += 1;
                zero_collective += u64::from(zero);
            }
        }
        self.standing_refreshes += delivered;
        self.standing_zero_collective += zero_collective;
        if let Some(m) = &self.metrics {
            m.gauge_set("standing_active", self.standing.len() as f64);
            if delivered > 0 {
                m.counter_add("standing_refresh", delivered);
                m.counter_add("standing_zero_collective", zero_collective);
                if let Some(t0) = wall_start {
                    m.latency_observe("refresh_wall", t0.elapsed().as_nanos() as u64);
                }
            }
        }

        Ok(RunReport {
            outcomes,
            comm,
            collective_ops,
            makespan,
            exact_ranks: residual.len(),
            sketch_answers: assembled.sketch_answers,
            histogram_answers,
            value_probes: probe_backend_pos.iter().flatten().count(),
            delta_occupancy,
            scan_threads: self.cfg.scan_threads,
            span,
        })
    }

    /// (Re)builds the resident bucket index when it is missing or stale:
    /// the shards pool their sample sketches through one collective, derive
    /// the identical splitter vector, partition their data (delta run
    /// included) and report per-bucket summaries, which the host caches as
    /// the global histogram.
    fn ensure_index(&mut self) -> Result<(), EngineError> {
        if self.index.is_some() && !self.index_dirty {
            return Ok(());
        }
        debug_assert!(self.total > 0, "index builds only over resident data");
        let (bounds, stats) = self.backend.build_index(self.cfg.index_buckets)?;
        self.index = Some(GlobalIndex::from_shard_stats(bounds, &stats));
        self.index_dirty = false;
        self.index_rebuilds += 1;
        Ok(())
    }

    /// Folds the delta run into the buckets once it outgrows the threshold.
    fn maybe_merge_delta(&mut self) -> Result<bool, EngineError> {
        let Some(gidx) = &self.index else {
            return Ok(false);
        };
        let threshold = (self.cfg.delta_threshold * self.total as f64).max(64.0);
        if (gidx.delta_total as f64) <= threshold {
            return Ok(false);
        }
        let stats = self.backend.merge_delta()?;
        if let Some(gidx) = &mut self.index {
            gidx.absorb_delta(&stats);
        }
        self.delta_merges += 1;
        Ok(true)
    }

    fn set_sizes(&mut self, sizes: Vec<u64>) {
        self.total = sizes.iter().sum();
        self.shard_sizes = sizes;
    }

    // --- Dynamic membership (SocketMp only; see [`ExecBackend`]) -------

    /// True when the engine's backend supports the membership verbs below
    /// (worker processes joining/leaving at runtime, shard migration,
    /// crash recovery).
    pub fn supports_membership(&self) -> bool {
        self.backend.supports_membership()
    }

    /// OS process ids of the shard workers, indexed by rank (empty on
    /// in-process backends).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.backend.worker_pids()
    }

    /// Migrates shard `rank` onto a freshly spawned worker process; the
    /// shard's state moves exactly (data, bucket runs, mid-stream sketch),
    /// so the cached histogram stays warm through the move and subsequent
    /// batches are bit-identical to an engine that never migrated.
    pub fn migrate_shard(&mut self, rank: usize) -> Result<(), EngineError> {
        let sizes = self.backend.replace_worker(rank)?;
        self.set_sizes(sizes);
        // Membership moved: standing queries must fully re-resolve rather
        // than trust any cached candidate window.
        self.standing.invalidate_all();
        if let Some(m) = &self.metrics {
            m.counter_add("migrations_total", 1);
        }
        Ok(())
    }

    /// Adds one empty shard worker at the top rank and returns the new
    /// shard count. New ingests spread over the grown ring; the bucket
    /// index is rebuilt lazily on the next exact batch.
    pub fn join_worker(&mut self) -> Result<usize, EngineError> {
        let sizes = self.backend.join_worker()?;
        self.cfg.nprocs = sizes.len();
        self.set_sizes(sizes);
        self.index = None;
        self.index_dirty = false;
        self.standing.invalidate_all();
        self.ingest_cursor %= self.cfg.nprocs;
        Ok(self.cfg.nprocs)
    }

    /// Retires the worker at `rank`, merging its shard into a survivor
    /// (no data is lost), and returns the new shard count. Refuses to
    /// retire the last shard.
    pub fn retire_worker(&mut self, rank: usize) -> Result<usize, EngineError> {
        let sizes = self.backend.retire_worker(rank)?;
        self.cfg.nprocs = sizes.len();
        self.set_sizes(sizes);
        self.index = None;
        self.index_dirty = false;
        self.standing.invalidate_all();
        self.ingest_cursor %= self.cfg.nprocs;
        Ok(self.cfg.nprocs)
    }

    /// "Detect, re-shard, keep serving": asks the backend to ping its
    /// workers, respawn the dead ones empty, re-wire the collective fabric
    /// and clear the poisoned state (see [`ExecBackend::recover`]). The
    /// dead shards' data is lost; the surviving multiset remains exact and
    /// the engine serves again. Called automatically by [`Engine::run`]
    /// under [`EngineConfig::self_heal`].
    pub fn recover(&mut self) -> Result<RecoveryReport, EngineError> {
        let report = self.backend.recover()?;
        self.set_sizes(report.sizes.clone());
        self.index = None;
        self.index_dirty = false;
        // Recovery changes the multiset (dead shards' data is gone), so it
        // is a mutation: the version moves and every subscription refreshes.
        self.version += 1;
        self.standing.invalidate_all();
        // The dead shards' elements left the multiset, so the host-global
        // ε-sketch is re-derived from the survivors' exports. Membership
        // moves (migrate/join/retire) never touch it: they permute the
        // multiset without changing it.
        self.refresh_sketch()?;
        if let Some(m) = &self.metrics {
            m.counter_add("recoveries_total", 1);
        }
        Ok(report)
    }

    /// Runs the configured balancer if the watermark is exceeded. A
    /// re-balance moves elements between shards arbitrarily, so it drops
    /// the bucket index; the splitters are rebuilt lazily on the next exact
    /// batch.
    fn maybe_rebalance(&mut self) -> Result<bool, EngineError> {
        if self.cfg.nprocs == 1 || self.total < self.cfg.nprocs as u64 {
            return Ok(false);
        }
        if self.imbalance_ratio() <= self.cfg.imbalance_watermark {
            return Ok(false);
        }
        let sizes = self.backend.rebalance()?;
        self.set_sizes(sizes);
        self.index = None;
        self.index_dirty = false;
        self.rebalances += 1;
        Ok(true)
    }
}

/// How one value-direction request is served, decided host-side during
/// probe routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CountRoute {
    /// Empty interval: exactly 0, no work at all.
    Empty,
    /// Every endpoint probe resolved exactly from the cached histogram.
    Histogram,
    /// Bucket-resolution brackets accepted by the contract.
    HistogramApprox,
    /// Estimated from the sketches under a `WithinRank` contract.
    Sketch,
    /// Exact resolution through the backend's probe Combine round.
    Backend,
}

/// Extracts the selected probes as a dense sub-list plus, per original
/// probe, its position in that sub-list.
fn sublist<T: Copy>(
    probes: &[(T, bool)],
    selected: &[bool],
) -> (Vec<(T, bool)>, Vec<Option<usize>>) {
    let mut list = Vec::new();
    let mut pos = vec![None; probes.len()];
    for (i, (&p, &sel)) in probes.iter().zip(selected).enumerate() {
        if sel {
            pos[i] = Some(list.len());
            list.push(p);
        }
    }
    (list, pos)
}

/// Everything [`assemble_outcomes`] needs to turn resolutions into typed
/// outcomes: the resolved rank slots, the host-side probe routing, and the
/// backend's (rank-0) shard outcome when one ran.
struct AssemblyContext<'a, T: Key> {
    n: u64,
    residual: &'a RankSet,
    exact_values: &'a [T],
    slot_fast: &'a [bool],
    exact_served: Served,
    probe_brackets: &'a [(u64, u64)],
    probe_exact: &'a [Option<u64>],
    probe_backend_pos: &'a [Option<usize>],
    probe_sketch_pos: &'a [Option<usize>],
    count_routes: &'a [Option<CountRoute>],
    hist_rank_served: &'a [Option<(T, u64)>],
    /// Host-computed ε-sketch answers, aligned with the plan's sketch
    /// targets / the sketch-probe sub-list. No backend involvement.
    sketch_values: &'a [T],
    sketch_ranks: &'a [u64],
    rank0: Option<&'a ShardBatchOutcome<T>>,
    /// The mutation state every outcome of this batch reflects.
    freshness: Freshness,
}

struct Assembled<T> {
    outcomes: Vec<Outcome<T>>,
    sketch_answers: usize,
    /// Per-request phase slot counts (`[probes, exact, sketch]`), aligned
    /// with `outcomes` — the span builder reads a request's phase
    /// participation off these.
    units: Vec<[u64; 3]>,
}

/// One response before cost attribution: `units` counts this request's
/// slots per execution phase (`[probes, exact, sketch]`).
struct Draft<T> {
    response: Response<T>,
    served: Served,
    units: [u64; 3],
}

/// Turns the plan's resolutions into typed [`Outcome`]s and attributes
/// each measured phase's collective ops proportionally over the requests
/// that used the phase (so the per-query costs sum to the batch total).
fn assemble_outcomes<T: Key>(
    plan: &query::RequestPlan<T>,
    cx: &AssemblyContext<'_, T>,
) -> Assembled<T> {
    let value_at = |r: u64| -> (T, bool) {
        let slot = cx.residual.slot_of(r);
        (cx.exact_values[slot], cx.slot_fast[slot])
    };
    let rank_served = |fast: bool| if fast { Served::Histogram } else { cx.exact_served };
    // One draft for any multi-rank kind (`TopK` runs, `Quantiles` lists):
    // gather the values, count the slots the multi-select actually paid
    // for, and label provenance by whether any slot left the histogram.
    let multi_rank_draft = |ranks: &mut dyn Iterator<Item = u64>| -> Draft<T> {
        let mut values = Vec::new();
        let mut slow = 0u64;
        for r in ranks {
            let (v, fast) = value_at(r);
            slow += u64::from(!fast);
            values.push(v);
        }
        Draft {
            response: Response::Elements(values),
            served: if slow == 0 { Served::Histogram } else { cx.exact_served },
            units: [0, slow, 0],
        }
    };

    let mut next_sketch = 0usize;
    let mut sketch_answers = 0usize;
    let mut drafts: Vec<Draft<T>> = Vec::with_capacity(plan.resolutions.len());
    for (i, res) in plan.resolutions.iter().enumerate() {
        let draft = match res {
            Resolution::Exact(r) => {
                let (v, fast) = value_at(*r);
                Draft {
                    response: Response::Element(v),
                    served: rank_served(fast),
                    units: [0, u64::from(!fast), 0],
                }
            }
            Resolution::ExactRun { len } => multi_rank_draft(&mut (0..*len)),
            Resolution::MultiExact(ranks) => multi_rank_draft(&mut ranks.iter().copied()),
            Resolution::Sketch { target_rank, max_rank_error } => {
                let value = cx.sketch_values[next_sketch];
                next_sketch += 1;
                sketch_answers += 1;
                Draft {
                    response: Response::Approximate {
                        value,
                        target_rank: *target_rank,
                        max_rank_error: *max_rank_error,
                    },
                    served: Served::Sketch,
                    units: [0, 0, 1],
                }
            }
            Resolution::HistRank { target_rank } => match cx.hist_rank_served[i] {
                Some((v, 0)) => Draft {
                    response: Response::Element(v),
                    served: Served::Histogram,
                    units: [0, 0, 0],
                },
                Some((v, err)) => Draft {
                    response: Response::Approximate {
                        value: v,
                        target_rank: *target_rank,
                        max_rank_error: err,
                    },
                    served: Served::Histogram,
                    units: [0, 0, 0],
                },
                None => {
                    let (v, fast) = value_at(*target_rank);
                    Draft {
                        response: Response::Element(v),
                        served: rank_served(fast),
                        units: [0, u64::from(!fast), 0],
                    }
                }
            },
            Resolution::Count(c) => {
                let route = cx.count_routes[i].expect("count resolution routed");
                assemble_count(c, route, cx, &mut sketch_answers)
            }
        };
        drafts.push(draft);
    }

    let phase = cx.rank0.map(|o| o.phase_ops).unwrap_or_default();
    let phase_ops = [phase.probes, phase.exact, phase.sketch];
    let mut totals = [0u64; 3];
    for d in &drafts {
        for (t, u) in totals.iter_mut().zip(d.units) {
            *t += u;
        }
    }
    let units: Vec<[u64; 3]> = drafts.iter().map(|d| d.units).collect();
    let outcomes = drafts
        .into_iter()
        .map(|d| {
            let mut collective_ops = 0.0f64;
            for k in 0..3 {
                if d.units[k] > 0 && totals[k] > 0 {
                    collective_ops += phase_ops[k] as f64 * d.units[k] as f64 / totals[k] as f64;
                }
            }
            Outcome {
                response: d.response,
                served: d.served,
                cost: CostAttribution { collective_ops },
                freshness: cx.freshness,
            }
        })
        .collect();
    Assembled { outcomes, sketch_answers, units }
}

/// Assembles one value-direction count along its decided route.
fn assemble_count<T: Key>(
    c: &query::CountResolution,
    route: CountRoute,
    cx: &AssemblyContext<'_, T>,
    sketch_answers: &mut usize,
) -> Draft<T> {
    match route {
        CountRoute::Empty => Draft {
            response: Response::Count { count: 0, max_error: 0 },
            served: Served::Histogram,
            units: [0, 0, 0],
        },
        CountRoute::Histogram => {
            let m = c.minuend.map_or(cx.n, |p| cx.probe_exact[p].expect("histogram-exact probe"));
            let s = c.subtrahend.map_or(0, |p| cx.probe_exact[p].expect("histogram-exact probe"));
            Draft {
                response: Response::Count { count: m.saturating_sub(s), max_error: 0 },
                served: Served::Histogram,
                units: [0, 0, 0],
            }
        }
        CountRoute::HistogramApprox => {
            let (m_lo, m_hi) = c.minuend.map_or((cx.n, cx.n), |p| cx.probe_brackets[p]);
            let (s_lo, s_hi) = c.subtrahend.map_or((0, 0), |p| cx.probe_brackets[p]);
            let lo = m_lo.saturating_sub(s_hi);
            let hi = m_hi.saturating_sub(s_lo);
            let count = lo + (hi - lo) / 2;
            Draft {
                response: Response::Count { count, max_error: hi - count },
                served: Served::Histogram,
                units: [0, 0, 0],
            }
        }
        CountRoute::Sketch => {
            let resolve = |p: usize| {
                cx.probe_exact[p].unwrap_or_else(|| {
                    cx.sketch_ranks[cx.probe_sketch_pos[p].expect("sketch probe listed")]
                })
            };
            let m = c.minuend.map_or(cx.n, resolve);
            let s = c.subtrahend.map_or(0, resolve);
            let estimated = [c.minuend, c.subtrahend]
                .into_iter()
                .flatten()
                .filter(|&p| cx.probe_exact[p].is_none())
                .count() as u64;
            *sketch_answers += 1;
            Draft {
                response: Response::Count {
                    count: m.saturating_sub(s),
                    max_error: c.sketch_error.expect("sketch route requires a contract"),
                },
                served: Served::Sketch,
                units: [0, 0, estimated],
            }
        }
        CountRoute::Backend => {
            let resolve = |p: usize| {
                cx.probe_exact[p].unwrap_or_else(|| {
                    cx.rank0.expect("probe batch executed").probe_counts
                        [cx.probe_backend_pos[p].expect("backend probe listed")]
                })
            };
            let m = c.minuend.map_or(cx.n, resolve);
            let s = c.subtrahend.map_or(0, resolve);
            let probed = [c.minuend, c.subtrahend]
                .into_iter()
                .flatten()
                .filter(|&p| cx.probe_exact[p].is_none())
                .count() as u64;
            Draft {
                response: Response::Count { count: m.saturating_sub(s), max_error: 0 },
                served: cx.exact_served,
                units: [probed, 0, 0],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_cfg(p: usize) -> EngineConfig {
        EngineConfig::new(p).model(MachineModel::free())
    }

    fn oracle_sorted(data: &[u64]) -> Vec<u64> {
        let mut v = data.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn exact_queries_match_oracle_across_batches() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        let data: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 100_000).collect();
        engine.ingest(data.clone()).unwrap();
        let sorted = oracle_sorted(&data);
        let n = sorted.len() as u64;

        // Several batches against the same session: state persistence.
        for batch in 0..3u64 {
            let queries = vec![
                Query::Rank(batch * 100),
                Query::Median,
                Query::quantile(0.25),
                Query::quantile(0.99),
                Query::TopK(5),
            ];
            let report = engine.execute(&queries).unwrap();
            assert_eq!(report.answers[0], Answer::Value(sorted[(batch * 100) as usize]));
            assert_eq!(report.answers[1], Answer::Value(sorted[((n - 1) / 2) as usize]));
            assert_eq!(report.answers[2], Answer::Value(sorted[quantile_rank(0.25, n) as usize]));
            assert_eq!(report.answers[3], Answer::Value(sorted[quantile_rank(0.99, n) as usize]));
            assert_eq!(report.answers[4], Answer::Top(sorted[..5].to_vec()));
            assert!(report.collective_ops > 0);
            assert!(report.comm.msgs_sent > 0);
        }
        assert_eq!(engine.batches(), 3);
        // The repeated ranks (median, quantiles, top-k) were refined into
        // equality-class buckets by batch 0, so later batches answered them
        // from the histogram alone.
        assert!(engine.index_health().histogram_hits > 0);
    }

    #[test]
    fn repeated_quantiles_become_histogram_only() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        engine.ingest((0..20_000u64).rev().collect()).unwrap();
        let queries =
            vec![Query::quantile(0.25), Query::Median, Query::quantile(0.9), Query::Rank(17)];
        let warm = engine.execute(&queries).unwrap();
        assert_eq!(warm.histogram_answers, 0);
        let hot = engine.execute(&queries).unwrap();
        // Every distinct rank of the repeated batch is a histogram answer …
        assert_eq!(hot.histogram_answers, hot.exact_ranks);
        // … so the batch paid only the synchronization barrier.
        assert!(
            hot.collective_ops < warm.collective_ops / 2,
            "hot {} vs warm {} collective ops",
            hot.collective_ops,
            warm.collective_ops
        );
        assert_eq!(hot.answers, warm.answers);
    }

    #[test]
    fn ingest_round_robin_stays_balanced() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        for _ in 0..10 {
            engine.ingest((0..25u64).collect()).unwrap();
        }
        assert_eq!(engine.len(), 250);
        let (mn, mx) = (
            *engine.shard_sizes().iter().min().unwrap(),
            *engine.shard_sizes().iter().max().unwrap(),
        );
        assert!(mx - mn <= 1, "round-robin drifted: {:?}", engine.shard_sizes());
        assert_eq!(engine.rebalances(), 0);
    }

    #[test]
    fn pinned_ingest_trips_the_watermark_exactly_once() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4).imbalance_watermark(1.5)).unwrap();
        engine.ingest((0..4000u64).collect()).unwrap();
        assert_eq!(engine.rebalances(), 0);
        // A hot shard: +4000 elements on shard 0 -> ratio (1000+4000)/2000 = 2.5.
        let rep = engine.ingest_pinned(0, (10_000..14_000u64).collect()).unwrap();
        assert!(rep.rebalanced);
        assert_eq!(engine.rebalances(), 1);
        assert!(engine.imbalance_ratio() <= 1.05, "ratio {}", engine.imbalance_ratio());
        // Queries still correct after the move.
        let report = engine.execute(&[Query::Rank(0), Query::quantile(1.0)]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(0));
        assert_eq!(report.answers[1], Answer::Value(13_999));
    }

    #[test]
    fn delete_removes_all_occurrences_and_updates_queries() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(3)).unwrap();
        engine.ingest(vec![5, 1, 5, 3, 5, 2, 4, 5]).unwrap();
        let rep = engine.delete(&[5, 99]).unwrap();
        assert_eq!(rep.elements, 4);
        assert_eq!(engine.len(), 4);
        let report = engine.execute(&[Query::TopK(4)]).unwrap();
        assert_eq!(report.answers[0], Answer::Top(vec![1, 2, 3, 4]));
    }

    #[test]
    fn delete_through_the_index_stays_exact() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        let data: Vec<u64> = (0..6000u64).map(|i| i % 500).collect();
        engine.ingest(data.clone()).unwrap();
        // Build the index, then delete value classes through it.
        engine.execute(&[Query::Median]).unwrap();
        assert!(engine.index_health().buckets > 0);
        let rep = engine.delete(&[100, 250, 499]).unwrap();
        assert_eq!(rep.elements, 36); // 3 values × 12 occurrences each
        let mut oracle = oracle_sorted(&data);
        oracle.retain(|&x| x != 100 && x != 250 && x != 499);
        let n = oracle.len() as u64;
        let report = engine.execute(&[Query::Rank(0), Query::Median, Query::Rank(n - 1)]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(oracle[0]));
        assert_eq!(report.answers[1], Answer::Value(oracle[((n - 1) / 2) as usize]));
        assert_eq!(report.answers[2], Answer::Value(oracle[(n - 1) as usize]));
    }

    #[test]
    fn delta_run_keeps_answers_exact_until_merge() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(2).delta_threshold(10.0)).unwrap(); // merge never triggers
        let mut all: Vec<u64> = (0..3000u64).map(|i| i.wrapping_mul(2654435761) % 9973).collect();
        engine.ingest(all.clone()).unwrap();
        engine.execute(&[Query::Median]).unwrap(); // builds the index
        for round in 0..4u64 {
            let burst: Vec<u64> = (0..333u64).map(|i| (round * 1000 + i * 7) % 9973).collect();
            all.extend(&burst);
            engine.ingest(burst).unwrap();
            assert!(engine.index_health().delta_len > 0, "delta must accumulate");
            let sorted = oracle_sorted(&all);
            let n = sorted.len() as u64;
            let report =
                engine.execute(&[Query::Rank(0), Query::Median, Query::quantile(0.99)]).unwrap();
            assert_eq!(report.answers[0], Answer::Value(sorted[0]));
            assert_eq!(report.answers[1], Answer::Value(sorted[((n - 1) / 2) as usize]));
            assert_eq!(report.answers[2], Answer::Value(sorted[quantile_rank(0.99, n) as usize]));
            assert!(report.delta_occupancy > 0.0);
        }
        assert_eq!(engine.index_health().delta_merges, 0);
    }

    #[test]
    fn delta_merge_triggers_at_the_threshold_and_stays_exact() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(2).delta_threshold(0.02)).unwrap();
        let mut all: Vec<u64> = (0..8000u64).map(|i| i.wrapping_mul(48271) % 65_536).collect();
        engine.ingest(all.clone()).unwrap();
        engine.execute(&[Query::Median]).unwrap();
        assert_eq!(engine.index_health().delta_merges, 0);
        // 8000 × 0.02 = 160 < 400-element burst -> merge must fire.
        let burst: Vec<u64> = (0..400u64).map(|i| i * 131 % 65_536).collect();
        all.extend(&burst);
        engine.ingest(burst).unwrap();
        let health = engine.index_health();
        assert_eq!(health.delta_merges, 1);
        assert_eq!(health.delta_len, 0);
        let sorted = oracle_sorted(&all);
        let n = sorted.len() as u64;
        let report = engine.execute(&[Query::Median, Query::quantile(0.75)]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(sorted[((n - 1) / 2) as usize]));
        assert_eq!(report.answers[1], Answer::Value(sorted[quantile_rank(0.75, n) as usize]));
    }

    #[test]
    fn approximate_quantile_stays_within_tolerance() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4).sketch_capacity(2048)).unwrap();
        // 0..80000 shuffled deterministically: value == rank.
        let n = 80_000u64;
        let data: Vec<u64> = {
            let mut v: Vec<u64> = (0..n).collect();
            let mut rng = cgselect_seqsel::KernelRng::new(9);
            for i in (1..v.len()).rev() {
                v.swap(i, rng.below(i as u64 + 1) as usize);
            }
            v
        };
        engine.ingest(data).unwrap();
        let tol = 0.05;
        let report = engine
            .execute(&[Query::quantile_within(0.5, tol), Query::quantile_within(0.9, tol)])
            .unwrap();
        assert_eq!(report.sketch_answers, 2);
        assert_eq!(report.exact_ranks, 0);
        // The whole rung is served from the host-global ε-sketch.
        assert_eq!(report.collective_ops, 0);
        for (answer, q) in report.answers.iter().zip([0.5, 0.9]) {
            match *answer {
                Answer::Approximate { value, target_rank, max_rank_error } => {
                    assert_eq!(target_rank, quantile_rank(q, n));
                    // The reported error is the sketch's *guarantee*, which
                    // must honor (and usually beats) the ⌈t·n⌉ contract.
                    assert!(
                        max_rank_error <= (tol * n as f64).ceil() as u64,
                        "guarantee {max_rank_error} exceeds the contract"
                    );
                    assert!(max_rank_error > 0, "a compacted sketch is not exact");
                    let err = value.abs_diff(target_rank);
                    assert!(
                        err <= max_rank_error,
                        "q={q}: estimate {value} vs target {target_rank} (err {err})"
                    );
                }
                ref other => panic!("expected an approximate answer, got {other:?}"),
            }
        }
        // A tolerance tighter than the sketch bound must fall back to exact.
        let report = engine.execute(&[Query::quantile_within(0.5, 1e-9)]).unwrap();
        assert_eq!(report.sketch_answers, 0);
        assert_eq!(report.answers[0], Answer::Value(quantile_rank(0.5, n)));
    }

    #[test]
    fn batching_uses_fewer_collective_ops_than_single_queries() {
        // Baseline-path claim (index disabled): coalescing R ranks into one
        // multi-select pass beats R single-rank passes. With the index on,
        // repeated single queries would be answered from the histogram and
        // the comparison would measure the cache, not the batching.
        let mut engine: Engine<u64> = Engine::new(free_cfg(4).index_buckets(0)).unwrap();
        let data: Vec<u64> =
            (0..40_000u64).map(|i| i.wrapping_mul(2654435761) % 1_000_000).collect();
        engine.ingest(data).unwrap();
        let ranks: Vec<u64> = (1..=16).map(|i| i * 2000).collect();

        let batch: Vec<Query> = ranks.iter().map(|&r| Query::Rank(r)).collect();
        let batched = engine.execute(&batch).unwrap();

        let mut single_total = 0u64;
        for &r in &ranks {
            single_total += engine.execute(&[Query::Rank(r)]).unwrap().collective_ops;
        }
        assert!(
            batched.collective_ops < single_total,
            "batched {} vs {} summed single-query collective ops",
            batched.collective_ops,
            single_total
        );
    }

    #[test]
    fn indexed_engine_beats_the_baseline_on_collective_ops() {
        let data: Vec<u64> =
            (0..40_000u64).map(|i| i.wrapping_mul(2654435761) % 1_000_000).collect();
        let queries: Vec<Query> = (1..=16).map(|i| Query::Rank(i * 2000)).collect();

        let mut baseline: Engine<u64> = Engine::new(free_cfg(4).index_buckets(0)).unwrap();
        baseline.ingest(data.clone()).unwrap();
        let base = baseline.execute(&queries).unwrap();

        let mut indexed: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        indexed.ingest(data).unwrap();
        let idx = indexed.execute(&queries).unwrap();

        assert_eq!(idx.answers, base.answers);
        assert!(
            2 * idx.collective_ops <= base.collective_ops,
            "indexed {} vs baseline {} collective ops (first batch)",
            idx.collective_ops,
            base.collective_ops
        );
    }

    #[test]
    fn errors_reject_bad_batches_without_poisoning() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(2)).unwrap();
        assert_eq!(engine.execute(&[Query::Median]).unwrap_err(), EngineError::Empty);
        engine.ingest(vec![1, 2, 3]).unwrap();
        assert_eq!(
            engine.execute(&[Query::Rank(3)]).unwrap_err(),
            EngineError::RankOutOfRange { rank: 3, n: 3 }
        );
        assert_eq!(
            engine.execute(&[Query::quantile(-0.1)]).unwrap_err(),
            EngineError::InvalidQuantile(-0.1)
        );
        // The session is still healthy.
        let report = engine.execute(&[Query::Median]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(2));
    }

    #[test]
    fn channel_mp_backend_matches_local_spmd_exactly() {
        // The conformance harness (tests/backend_conformance.rs) covers the
        // full lifecycle; this is the in-crate smoke check of the same
        // invariant: identical answers AND identical collective-op counts.
        let data: Vec<u64> = (0..8000u64).map(|i| i.wrapping_mul(2654435761) % 50_000).collect();
        let queries = vec![Query::Rank(17), Query::Median, Query::quantile(0.9), Query::TopK(4)];

        let mut local: Engine<u64> = Engine::new(free_cfg(3)).unwrap();
        let mut mp: Engine<u64> = Engine::new(free_cfg(3).channel_mp()).unwrap();
        assert_eq!(local.backend_kind(), BackendKind::LocalSpmd);
        assert_eq!(mp.backend_kind(), BackendKind::ChannelMp);

        local.ingest(data.clone()).unwrap();
        mp.ingest(data).unwrap();
        for round in 0..3 {
            let a = local.execute(&queries).unwrap();
            let b = mp.execute(&queries).unwrap();
            assert_eq!(a.answers, b.answers, "round {round}");
            assert_eq!(a.collective_ops, b.collective_ops, "round {round}");
            assert_eq!(a.histogram_answers, b.histogram_answers, "round {round}");
        }
        local.delete(&[17, 99]).unwrap();
        mp.delete(&[17, 99]).unwrap();
        assert_eq!(local.len(), mp.len());
        assert_eq!(local.index_health(), mp.index_health());
        let a = local.execute(&queries).unwrap();
        let b = mp.execute(&queries).unwrap();
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.collective_ops, b.collective_ops);
    }

    #[test]
    fn single_shard_engine_works() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(1)).unwrap();
        engine.ingest((0..100u64).rev().collect()).unwrap();
        let report = engine.execute(&[Query::Median, Query::TopK(2)]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(49));
        assert_eq!(report.answers[1], Answer::Top(vec![0, 1]));
    }

    #[test]
    fn virtual_time_advances_across_batches() {
        let mut engine: Engine<u64> = Engine::new(EngineConfig::new(4)).unwrap();
        engine.ingest((0..10_000u64).collect()).unwrap();
        let a = engine.execute(&[Query::Median]).unwrap();
        let b = engine.execute(&[Query::Rank(123)]).unwrap();
        assert!(a.makespan > 0.0);
        assert!(b.makespan > 0.0);
        // A fully histogram-answered repeat costs no measured batch time —
        // that is the point of the fast path.
        let c = engine.execute(&[Query::Median]).unwrap();
        assert_eq!(c.histogram_answers, 1);
        assert_eq!(c.answers, a.answers);
    }
}
