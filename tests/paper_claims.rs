//! The paper's qualitative claims, asserted as tests on the virtual CM-5.
//!
//! These are the repository's regression guard for the *shape* of the
//! reproduced evaluation: if a change to a kernel or to the cost model
//! flips one of the paper's conclusions, a test here fails.

use cgselect::{
    median_on_machine, Algorithm, Balancer, Distribution, MachineModel, SelectionConfig,
};

fn time(algo: Algorithm, bal: Balancer, dist: Distribution, n: usize, p: usize) -> f64 {
    let parts = cgselect::generate(dist, n, p, 41);
    let cfg = SelectionConfig::with_seed(43).balancer(bal);
    median_on_machine(p, MachineModel::cm5(), &parts, algo, &cfg).unwrap().makespan()
}

const N: usize = 1 << 20; // 1M keys: large enough for stable shapes, fast enough for CI
const P: usize = 32;

#[test]
fn randomized_beats_deterministic_by_a_wide_margin() {
    // Paper: "randomized algorithms are superior to their deterministic
    // counterparts" by an order of magnitude (>=16x / >=9x at n=2M, p=32
    // on the CM-5; the margin here is conservative).
    let mom =
        time(Algorithm::MedianOfMedians, Balancer::GlobalExchange, Distribution::Random, N, P);
    let bkt = time(Algorithm::BucketBased, Balancer::None, Distribution::Random, N, P);
    let rnd = time(Algorithm::Randomized, Balancer::None, Distribution::Random, N, P);
    let fast = time(Algorithm::FastRandomized, Balancer::None, Distribution::Random, N, P);
    assert!(mom / rnd > 4.0, "MoM/randomized = {:.2}", mom / rnd);
    assert!(mom / fast > 4.0, "MoM/fast = {:.2}", mom / fast);
    assert!(bkt / rnd > 2.5, "bucket/randomized = {:.2}", bkt / rnd);
    assert!(bkt / fast > 2.5, "bucket/fast = {:.2}", bkt / fast);
}

#[test]
fn bucket_based_beats_median_of_medians_on_random_data() {
    // Paper: "the bucket-based approach consistently performed better than
    // the median of medians approach by about a factor of two".
    let mom =
        time(Algorithm::MedianOfMedians, Balancer::GlobalExchange, Distribution::Random, N, P);
    let bkt = time(Algorithm::BucketBased, Balancer::None, Distribution::Random, N, P);
    assert!(bkt < mom, "bucket {bkt:.4}s should beat MoM {mom:.4}s");
}

#[test]
fn bucket_based_close_to_mom_on_sorted_data() {
    // Paper: "For sorted data, the bucket-based approach which does not use
    // any load balancing ran only about 25% slower than median of medians
    // with load balancing."
    let mom =
        time(Algorithm::MedianOfMedians, Balancer::GlobalExchange, Distribution::Sorted, N, P);
    let bkt = time(Algorithm::BucketBased, Balancer::None, Distribution::Sorted, N, P);
    let excess = (bkt - mom) / mom;
    assert!(
        excess < 0.8,
        "bucket on sorted should be within ~tens of percent of MoM, got {:+.0}%",
        excess * 100.0
    );
}

/// Mean over several (data seed, algorithm seed) pairs — the paper's own
/// protocol averages multiple runs per point, which is what keeps
/// single-pivot luck out of the comparisons below (the no-LB vs cheap-LB
/// margins are only a few percent, well inside one run's pivot variance).
fn time_avg(algo: Algorithm, bal: Balancer, dist: Distribution, n: usize, p: usize) -> f64 {
    let seeds: Vec<(u64, u64)> = (0..10).map(|i| (41 + i * 100, 43 + i * 100)).collect();
    let total: f64 = seeds
        .iter()
        .map(|&(data_seed, algo_seed)| {
            let parts = cgselect::generate(dist, n, p, data_seed);
            let cfg = SelectionConfig::with_seed(algo_seed).balancer(bal);
            median_on_machine(p, MachineModel::cm5(), &parts, algo, &cfg).unwrap().makespan()
        })
        .sum();
    total / seeds.len() as f64
}

#[test]
fn load_balancing_hurts_randomized_selection() {
    // Paper: "The execution times are consistently better without using any
    // load balancing ... Load balancing never improved the running time of
    // randomized selection."
    for dist in Distribution::PAPER {
        let none = time_avg(Algorithm::Randomized, Balancer::None, dist, N, P);
        for bal in [Balancer::ModOmlb, Balancer::DimExchange, Balancer::GlobalExchange] {
            let with = time_avg(Algorithm::Randomized, bal, dist, N, P);
            assert!(
                with > none * 0.98,
                "{} with {:?}: {with:.4}s vs none {none:.4}s",
                dist.name(),
                bal
            );
        }
    }
}

#[test]
fn load_balancing_helps_fast_randomized_on_sorted_data() {
    // Paper: "load balancing significantly improved the performance of fast
    // randomized selection [on sorted data]".
    let none = time(Algorithm::FastRandomized, Balancer::None, Distribution::Sorted, N, P);
    let with = time(Algorithm::FastRandomized, Balancer::ModOmlb, Distribution::Sorted, N, P);
    assert!(with < none, "fast+modOMLB {with:.4}s should beat fast+none {none:.4}s on sorted");
}

#[test]
fn randomized_suffers_on_sorted_data() {
    // Paper: "The randomized selection algorithm ran 2 to 2.5 times faster
    // for random data than for sorted data."
    let random = time(Algorithm::Randomized, Balancer::None, Distribution::Random, N, P);
    let sorted = time(Algorithm::Randomized, Balancer::None, Distribution::Sorted, N, P);
    let ratio = sorted / random;
    assert!(
        (1.3..4.0).contains(&ratio),
        "sorted/random ratio {ratio:.2} outside the expected band"
    );
}

#[test]
fn fast_randomized_with_lb_is_input_insensitive() {
    // Paper: "Using any of the load balancing strategies, there is very
    // little variance in the running time of fast randomized selection.
    // The algorithm performs equally well on both best and worst-case data."
    let random = time(Algorithm::FastRandomized, Balancer::ModOmlb, Distribution::Random, N, P);
    let sorted = time(Algorithm::FastRandomized, Balancer::ModOmlb, Distribution::Sorted, N, P);
    let ratio = sorted / random;
    assert!(
        ratio < 2.0,
        "fast randomized + LB should be nearly input-insensitive, got {ratio:.2}x"
    );
    // And it must dominate plain randomized on sorted inputs (Figure 4's
    // point at this scale).
    let rnd_sorted = time(Algorithm::Randomized, Balancer::None, Distribution::Sorted, N, P);
    assert!(
        sorted < rnd_sorted * 1.4,
        "fast+LB on sorted ({sorted:.4}s) should be competitive with randomized ({rnd_sorted:.4}s)"
    );
}

#[test]
fn survivor_counts_decay_geometrically() {
    // Paper (citing Rajasekaran et al.): "the expected number of points
    // decreases geometrically after each iteration" for fast randomized
    // selection; randomized selection halves in expectation.
    let parts = cgselect::generate(Distribution::Random, N, P, 53);
    let cfg = SelectionConfig::with_seed(54);
    for algo in [Algorithm::FastRandomized, Algorithm::Randomized] {
        let sel = median_on_machine(P, MachineModel::cm5(), &parts, algo, &cfg).unwrap();
        let s = &sel.per_proc[0].survivors;
        assert!(s.len() >= 2, "{algo:?}: need at least two iterations, got {s:?}");
        assert_eq!(s[0], N as u64);
        // Strict decrease everywhere…
        for w in s.windows(2) {
            assert!(w[1] < w[0], "{algo:?}: survivors must shrink: {s:?}");
        }
        // …and overall super-linear collapse: the geometric mean of the
        // per-iteration ratios is well below 1.
        let overall = (s[s.len() - 1] as f64 / s[0] as f64).powf(1.0 / (s.len() - 1) as f64);
        assert!(
            overall < 0.75,
            "{algo:?}: expected geometric decay, got mean ratio {overall:.3} in {s:?}"
        );
        // History is identical on every processor.
        for o in &sel.per_proc {
            assert_eq!(&o.survivors, s);
        }
    }
}

#[test]
fn fast_randomized_uses_far_fewer_iterations() {
    // Paper: O(log log n) vs O(log n) iterations.
    let parts = cgselect::generate(Distribution::Random, N, P, 47);
    let cfg = SelectionConfig::with_seed(48);
    let fast =
        median_on_machine(P, MachineModel::cm5(), &parts, Algorithm::FastRandomized, &cfg).unwrap();
    let rnd =
        median_on_machine(P, MachineModel::cm5(), &parts, Algorithm::Randomized, &cfg).unwrap();
    assert!(
        fast.iterations() * 2 < rnd.iterations(),
        "fast {} vs randomized {} iterations",
        fast.iterations(),
        rnd.iterations()
    );
}
