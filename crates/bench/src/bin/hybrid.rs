//! Regenerates the paper's hybrid (see `cgselect_bench::figs`).
fn main() {
    let quick = cgselect_bench::quick_mode();
    cgselect_bench::figs::hybrid(quick);
}
