//! Pluggable execution backends: *where* the engine's shards live and
//! *how* its collective rounds are realized.
//!
//! The paper's algorithms — and the Saukas–Song line of coarse-grained
//! selection work — are phrased purely in terms of collectives, so their
//! analysis holds no matter how a round is transported. This module makes
//! the engine honor that: everything below the host-side planner (shard
//! residency, batch execution, ingest/delete/rebalance, index maintenance,
//! communication accounting) sits behind the [`ExecBackend`] trait, chosen
//! per engine via [`crate::EngineConfig::backend`].
//!
//! Three backends ship:
//!
//! * **[`LocalSpmd`]** — the original in-process
//!   [`cgselect_runtime::Session`]: shard state lives in each persistent
//!   worker's `ShardStore`, programs are shipped as shared closures.
//! * **[`ChannelMp`]** — message passing: each shard lives on its own
//!   long-lived worker thread that owns its data outright; every command
//!   and reply crosses the channel as a **serialized byte frame**
//!   (`wire`, private), never as a shared pointer — the dress rehearsal for
//!   out-of-process/remote shards. It also supports [`Fault`] injection
//!   (worker panic mid-batch, dropped replies, slow shards) so the typed
//!   error and poisoning behavior at this boundary is testable.
//! * **[`socket_mp::SocketMp`]** — the rehearsal made real: each shard is a
//!   separate `cgselect-shard-worker` **process**, commands and the
//!   shard-to-shard collective fabric both ride Unix-domain sockets, and
//!   membership is dynamic — workers [`ExecBackend::join_worker`] /
//!   [`ExecBackend::retire_worker`] at runtime, shards migrate between
//!   processes ([`ExecBackend::replace_worker`]), and a killed worker is
//!   detected and re-sharded around ([`ExecBackend::recover`]).
//!
//! All backends execute the *identical* per-shard code (`ops`, private)
//! over the identical [`cgselect_runtime::Proc`] collectives, which is what
//! `tests/backend_conformance.rs` exploits: every scenario family must
//! produce the same answers **and the same collective-round counts** on
//! all of them, differentially against the sequential oracle.

pub mod channel_mp;
mod local;
pub(crate) mod ops;
pub(crate) mod protocol;
pub mod socket_mp;
pub(crate) mod wire;

pub use channel_mp::{ChannelMp, ChannelMpTuning, Fault};
pub use local::LocalSpmd;
pub use socket_mp::{SocketMp, SocketMpTuning};

use std::sync::Arc;

use cgselect_core::SelectionConfig;
use cgselect_runtime::{CommStats, Key, RunError};
use cgselect_seqsel::SepBound;

use crate::index::{BucketStats, Group};
use crate::obs::{PhaseSpan, TraceContext};
use crate::query::RankSet;

/// Which execution backend an engine runs on (see
/// [`crate::EngineConfig::backend`]).
#[derive(Clone, Debug, Default)]
pub enum BackendChoice {
    /// The in-process persistent SPMD session (the default).
    #[default]
    LocalSpmd,
    /// Message passing over per-shard worker threads with serialized
    /// command/reply frames, tuned by the carried [`ChannelMpTuning`].
    ChannelMp(ChannelMpTuning),
    /// Message passing over per-shard worker **processes** and Unix-domain
    /// sockets, tuned by the carried [`SocketMpTuning`]. Requires the
    /// `cgselect-shard-worker` binary (see
    /// [`crate::EngineConfig::socket_mp`]).
    SocketMp(SocketMpTuning),
}

impl BackendChoice {
    /// The kind this choice constructs.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendChoice::LocalSpmd => BackendKind::LocalSpmd,
            BackendChoice::ChannelMp(_) => BackendKind::ChannelMp,
            BackendChoice::SocketMp(_) => BackendKind::SocketMp,
        }
    }
}

/// Discriminates the shipped backend implementations (e.g. for reports and
/// bench labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// [`LocalSpmd`].
    LocalSpmd,
    /// [`ChannelMp`].
    ChannelMp,
    /// [`SocketMp`].
    SocketMp,
}

impl BackendKind {
    /// Stable lower-case label.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::LocalSpmd => "local-spmd",
            BackendKind::ChannelMp => "channel-mp",
            BackendKind::SocketMp => "socket-mp",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failure at the execution-backend boundary.
///
/// Mirrors [`RunError::SessionPoisoned`] semantics at the [`ExecBackend`]
/// level: after any variant other than [`BackendError::Poisoned`] is
/// returned once, the backend is poisoned and every subsequent call fails
/// fast with [`BackendError::Poisoned`] — surviving shards may hold
/// inconsistent state, so a long-lived service should rebuild the engine.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendError {
    /// The in-process SPMD runtime failed; carries the underlying error.
    Runtime(RunError),
    /// A message-passing shard worker panicked mid-program.
    WorkerPanicked {
        /// Rank of the panicking worker.
        rank: usize,
        /// Panic payload rendered as a string.
        message: String,
    },
    /// A shard worker stopped replying within the reply timeout (its reply
    /// was lost, or the worker died without reporting).
    WorkerUnresponsive {
        /// Rank of the silent worker.
        rank: usize,
    },
    /// The backend refused to run because an earlier program failed.
    Poisoned,
    /// A worker process could not be spawned or initialized.
    Spawn {
        /// Rank the worker was meant to serve.
        rank: usize,
        /// What went wrong.
        detail: String,
    },
    /// The backend does not implement the named verb (e.g. membership
    /// operations on an in-process backend).
    Unsupported {
        /// The refused verb.
        verb: &'static str,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Runtime(e) => write!(f, "backend runtime failure: {e}"),
            BackendError::WorkerPanicked { rank, message } => {
                write!(f, "shard worker {rank} panicked: {message}")
            }
            BackendError::WorkerUnresponsive { rank } => {
                write!(f, "shard worker {rank} stopped replying")
            }
            BackendError::Poisoned => {
                write!(f, "backend poisoned by an earlier failed program")
            }
            BackendError::Spawn { rank, detail } => {
                write!(f, "spawning shard worker {rank} failed: {detail}")
            }
            BackendError::Unsupported { verb } => {
                write!(f, "this backend does not support {verb}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<RunError> for BackendError {
    fn from(e: RunError) -> Self {
        match e {
            // The session's own fail-fast refusal is the backend-level
            // poisoned state, not a fresh runtime failure.
            RunError::SessionPoisoned => BackendError::Poisoned,
            other => BackendError::Runtime(other),
        }
    }
}

impl BackendError {
    /// True for failures that are usually fallout from another worker's
    /// failure (timeouts, disconnects) — the backend-level twin of
    /// [`RunError::is_secondary`], used to report root causes.
    pub fn is_secondary(&self) -> bool {
        match self {
            BackendError::Runtime(e) => e.is_secondary(),
            BackendError::WorkerPanicked { rank, message } => {
                RunError::ProcPanicked { rank: *rank, message: message.clone() }.is_secondary()
            }
            BackendError::WorkerUnresponsive { .. }
            | BackendError::Poisoned
            | BackendError::Spawn { .. }
            | BackendError::Unsupported { .. } => false,
        }
    }
}

/// What [`ExecBackend::recover`] did to bring a backend back to serving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Ranks whose worker processes were found dead and respawned empty
    /// (their shard data is lost; the surviving multiset stays exact).
    pub replaced: Vec<usize>,
    /// Per-shard sizes after recovery, indexed by rank.
    pub sizes: Vec<u64>,
}

/// Everything a backend's shards need to execute one coalesced query batch.
///
/// Host-side planning — rank coalescing, histogram routing, the per-batch
/// pivot seed — has already happened; the plan is identical for every
/// backend, which is what makes answers *and collective-round counts*
/// comparable across backends.
#[derive(Clone, Debug)]
pub struct BatchPlan<T> {
    /// Candidate-window groups routed against the cached histogram (empty
    /// when the index is off or every rank took the histogram fast path).
    pub groups: Arc<Vec<Group>>,
    /// The batch's deduplicated global ranks, as contiguous runs.
    pub exact_ranks: Arc<RankSet>,
    /// Value probes `(value, inclusive)` the histogram could not bound —
    /// resolved by ONE vectorized `count_below` Combine round for all of
    /// them together, no matter how many (sorted, distinct).
    pub value_probes: Arc<Vec<(T, bool)>>,
    /// Selection tuning with the per-batch pivot seed already folded in.
    pub selection: SelectionConfig,
    /// Whether the shards hold a bucket index this batch executes through.
    pub use_index: bool,
    /// Total resident population.
    pub full_total: u64,
    /// Global unindexed delta-run population.
    pub delta_total: u64,
    /// The batch's trace context when observability is on — its presence
    /// asks the shards to bracket execution phases and measure
    /// [`PhaseSpan`]s; `None` keeps execution span-free (and byte-for-byte
    /// identical in collective structure either way).
    pub trace: Option<TraceContext>,
}

/// Per-phase collective-operation deltas of one executed batch (identical
/// on every rank by SPMD discipline) — the measurement behind the
/// per-query [`crate::CostAttribution`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseOps {
    /// The value-probe `count_below` Combine round.
    pub probes: u64,
    /// The exact multi-select pass (localization, recursion, refinement).
    pub exact: u64,
    /// The sketch phase — pinned at zero since sketch contracts are served
    /// host-side off the global ε-sketch; kept so the span schema (and the
    /// per-query [`crate::CostAttribution`] shape) stays stable.
    pub sketch: u64,
}

/// What one shard reports back from one executed batch.
#[derive(Clone, Debug)]
pub struct ShardBatchOutcome<T> {
    /// Resolved values for the coalesced rank list; slots answered from the
    /// host's histogram fast path stay `None`. Identical on every rank by
    /// SPMD discipline.
    pub exact: Vec<Option<T>>,
    /// Per-group refreshed bucket summaries after answer refinement,
    /// aligned with [`BatchPlan::groups`].
    pub refines: Vec<BucketStats<T>>,
    /// Refreshed bucket summaries from probe-driven splitter refinement:
    /// one entry per [`BatchPlan::value_probes`] probe that actually
    /// carved a new equality class (already-carved probes are skipped by
    /// a deterministic test the host replays), in probe order.
    pub probe_refines: Vec<BucketStats<T>>,
    /// **Global** prefix counts for [`BatchPlan::value_probes`], in order
    /// (already Combined — identical on every rank).
    pub probe_counts: Vec<u64>,
    /// Collective-op deltas per execution phase.
    pub phase_ops: PhaseOps,
    /// Communication this shard moved during the batch (a
    /// [`CommStats::since`] delta).
    pub comm: CommStats,
    /// Virtual time this shard spent in the batch.
    pub elapsed: f64,
    /// Per-phase measurements, in [`crate::obs::Phase::ALL`] order — empty
    /// unless the plan carried a [`TraceContext`].
    pub spans: Vec<PhaseSpan>,
}

/// What one shard reports back from one delete pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardDeletion {
    /// Elements remaining on the shard.
    pub remaining: u64,
    /// Per-bucket removal counts (`num_buckets + 1` entries, the last one
    /// the delta run's) when the shard holds an index; empty otherwise.
    pub removed: Vec<u64>,
}

/// The execution seam of the engine: owns shard residency and realizes
/// every collective verb the host-side planner needs.
///
/// Implementations must uphold three contracts:
///
/// 1. **Determinism** — the same call sequence produces identical results
///    (answers, per-shard sizes, bucket summaries, collective-op deltas)
///    on every backend, because all of them run the same per-shard code
///    over the same [`cgselect_runtime::Proc`] collective semantics.
/// 2. **Rank order** — every `Vec` result is indexed by shard rank.
/// 3. **Poisoning** — after any method returns an error, the backend is
///    poisoned: subsequent calls fail fast with [`BackendError::Poisoned`]
///    (mirroring [`RunError::SessionPoisoned`]) and worker threads are
///    joined on drop.
pub trait ExecBackend<T: Key>: Send {
    /// Number of shards (= virtual processors).
    fn nprocs(&self) -> usize;

    /// Which implementation this is.
    fn kind(&self) -> BackendKind;

    /// True once a program has failed in this backend.
    fn is_poisoned(&self) -> bool;

    /// Appends `chunks[rank]` to each shard (the new elements join the
    /// index's delta run) and returns the per-shard sizes.
    fn ingest(&mut self, chunks: Vec<Vec<T>>) -> Result<Vec<u64>, BackendError>;

    /// Removes every occurrence of the sorted, deduplicated `values` from
    /// each shard, maintaining shard indexes in place.
    fn delete(&mut self, values: Vec<T>) -> Result<Vec<ShardDeletion>, BackendError>;

    /// Runs the configured balancer over all shards (dropping their bucket
    /// indexes) and returns the per-shard sizes.
    fn rebalance(&mut self) -> Result<Vec<u64>, BackendError>;

    /// (Re)builds the shared-splitter bucket index with the given target
    /// bucket count and returns the shared splitter vector (identical on
    /// every shard by construction; the host mirrors it) plus each shard's
    /// per-bucket summary.
    #[allow(clippy::type_complexity)]
    fn build_index(
        &mut self,
        buckets: usize,
    ) -> Result<(Vec<SepBound<T>>, Vec<BucketStats<T>>), BackendError>;

    /// Folds each shard's delta run into its buckets and returns the
    /// per-shard delta summaries.
    fn merge_delta(&mut self) -> Result<Vec<BucketStats<T>>, BackendError>;

    /// Executes one coalesced query batch (the
    /// [`cgselect_core::parallel_multi_select_windows`] dispatch plus the
    /// vectorized `count_below` probe round) and returns each shard's
    /// outcome.
    fn execute(&mut self, plan: &BatchPlan<T>) -> Result<Vec<ShardBatchOutcome<T>>, BackendError>;

    /// Exports each shard's resident ε-sketch, indexed by rank. The host
    /// merges them ([`crate::EpsSketch::merge`] is closed under the error
    /// bound) to rebuild its global sketch after operations that change
    /// the multiset outside ingest (delete, crash recovery).
    fn export_sketches(&mut self) -> Result<Vec<crate::sketch::EpsSketch<T>>, BackendError>;

    // --- Dynamic membership (optional capability) ---------------------
    //
    // In-process backends have a fixed worker ring, so every verb below
    // defaults to [`BackendError::Unsupported`]. [`SocketMp`] overrides
    // all of them: its shard workers are processes and its collective
    // fabric is rebuilt per membership epoch.

    /// True when this backend implements the membership verbs below.
    fn supports_membership(&self) -> bool {
        false
    }

    /// OS process ids of the shard workers, indexed by rank — empty for
    /// in-process backends. (For tests and operational tooling; killing a
    /// pid and calling [`ExecBackend::recover`] is the crash drill.)
    fn worker_pids(&self) -> Vec<u32> {
        vec![]
    }

    /// **Shard migration**: moves shard `rank` to a freshly spawned worker
    /// process — full state (data, bucket runs, mid-stream sketch) is
    /// exported, imported exactly, and the fabric re-wired — then returns
    /// the per-shard sizes. The shard is bit-identical after the move, so
    /// host-side caches (e.g. the histogram) stay valid.
    fn replace_worker(&mut self, rank: usize) -> Result<Vec<u64>, BackendError> {
        let _ = rank;
        Err(BackendError::Unsupported { verb: "replace_worker" })
    }

    /// Adds one empty shard worker at rank `nprocs`, re-wires the fabric,
    /// and returns the new per-shard sizes (length `nprocs + 1`).
    fn join_worker(&mut self) -> Result<Vec<u64>, BackendError> {
        Err(BackendError::Unsupported { verb: "join_worker" })
    }

    /// Removes the worker at `rank`, merging its shard into a survivor,
    /// and returns the new per-shard sizes (length `nprocs − 1`). Ranks
    /// above the retiree shift down by one.
    fn retire_worker(&mut self, rank: usize) -> Result<Vec<u64>, BackendError> {
        let _ = rank;
        Err(BackendError::Unsupported { verb: "retire_worker" })
    }

    /// "Detect, re-shard, keep serving": pings every worker, respawns the
    /// dead ones with empty shards, resets the survivors' bucket indexes,
    /// rebuilds the fabric and clears the poisoned state. The dead shards'
    /// data is lost; the surviving multiset remains exact.
    fn recover(&mut self) -> Result<RecoveryReport, BackendError> {
        Err(BackendError::Unsupported { verb: "recover" })
    }
}
