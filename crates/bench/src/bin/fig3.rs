//! Regenerates the paper's fig3 (see `cgselect_bench::figs`).
fn main() {
    let quick = cgselect_bench::quick_mode();
    cgselect_bench::figs::fig3(quick);
}
