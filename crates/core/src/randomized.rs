//! Algorithm 3 — Randomized parallel selection.

use cgselect_balance::{rebalance, BalanceReport};
use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::KernelRng;

use crate::common::{finish, two_way_narrow, Narrow};
use crate::{AlgoResult, Algorithm, SelectionConfig};

/// One pivot-discard round of randomized selection, shared with the
/// fast-randomized algorithm's degeneracy fallback.
///
/// Every processor draws the *same* global index from the shared stream
/// (paper §3.3: same generator, same seed on all processors); a parallel
/// prefix locates the owner, who publishes the element; everyone
/// partitions against it (the paper's two-way `≤`/`>` scan, with the
/// duplicate-degeneracy fallback described at [`two_way_narrow`]) and a
/// Combine decides the surviving zone. Returns `Some(pivot)` if the
/// target's rank landed in the pivot's equality class.
pub(crate) fn random_pivot_step<T: Key>(
    proc: &mut Proc,
    data: &mut Vec<T>,
    nr: &mut Narrow,
    shared_rng: &mut KernelRng,
) -> Option<T> {
    // Steps 0–3: shared draw; prefix-sum ownership; owner broadcast.
    let idx = shared_rng.below(nr.n);
    let len = data.len() as u64;
    let before = proc.exclusive_prefix_sum(len);
    let mine = (before <= idx && idx < before + len).then(|| data[(idx - before) as usize]);
    let guess: T = proc.bcast_from_owner(mine);

    // Steps 4–6: partition, combine, narrow.
    two_way_narrow(proc, data, nr, guess)
}

/// Runs randomized parallel selection (paper Algorithm 3): expected
/// `O(log n)` iterations, each discarding about half of the remaining
/// elements around a uniformly random pivot.
pub(crate) fn run<T: Key>(
    proc: &mut Proc,
    mut data: Vec<T>,
    k0: u64,
    n0: u64,
    cfg: &SelectionConfig,
) -> AlgoResult<T> {
    let p = proc.nprocs();
    let threshold = cfg.threshold(p);
    let kernel = cfg.kernel_for(Algorithm::Randomized);
    let mut shared_rng = KernelRng::new(cfg.seed);
    let mut local_rng = KernelRng::derive(cfg.seed, proc.rank() as u64 + 1);

    let mut nr = Narrow { n: n0, k: k0 };
    let mut iterations = 0u32;
    let mut balance = BalanceReport::default();
    let mut early: Option<T> = None;
    let mut survivors = Vec::new();

    while nr.n > threshold {
        survivors.push(nr.n);
        iterations += 1;
        assert!(
            iterations <= cfg.max_iters,
            "randomized selection exceeded {} iterations (n={}, k={})",
            cfg.max_iters,
            nr.n,
            nr.k
        );
        if let Some(v) = random_pivot_step(proc, &mut data, &mut nr, &mut shared_rng) {
            early = Some(v);
            break;
        }
        // Step 7 (optional): load balance.
        balance.absorb(rebalance(cfg.balancer, proc, &mut data));
    }

    let value = match early {
        Some(v) => v,
        None => finish(proc, data, nr.k, kernel, &mut local_rng),
    };
    AlgoResult { value, iterations, unsuccessful: 0, balance, survivors }
}
