//! Failure-mode tests: what happens when the SPMD discipline is violated
//! or inputs are malformed. The runtime must fail loudly with diagnostics,
//! never hang silently or corrupt results.

use std::time::Duration;

use cgselect::{Algorithm, Machine, MachineModel, SelectionConfig};

fn small_timeout() -> Machine {
    Machine::with_model(2, MachineModel::free()).recv_timeout(Duration::from_millis(200))
}

#[test]
fn divergent_rank_parameters_are_caught() {
    // Processors disagree on k: the collective input validation (a Combine
    // over n and the shared assert) means the guilty processor panics on
    // its own assert or the runs diverge into a protocol error — either
    // way `run` returns an error instead of wrong data.
    let err = small_timeout()
        .run(|proc| {
            let mine: Vec<u64> = (0..100).collect();
            // Rank 0 asks for rank 10, rank 1 for rank 20: the random
            // streams agree but the narrowing decisions diverge.
            let k = if proc.rank() == 0 { 10 } else { 20 };
            cgselect::parallel_select(
                proc,
                mine,
                k,
                Algorithm::Randomized,
                &SelectionConfig { min_sequential: 8, ..SelectionConfig::with_seed(3) },
            )
            .value
        })
        .unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("timed out")
            || msg.contains("unconsumed")
            || msg.contains("owner")
            || msg.contains("panicked"),
        "unexpected diagnostic: {msg}"
    );
}

#[test]
fn divergent_algorithms_are_caught() {
    let err = small_timeout()
        .run(|proc| {
            let mine: Vec<u64> = (0..200).collect();
            let algo =
                if proc.rank() == 0 { Algorithm::Randomized } else { Algorithm::MedianOfMedians };
            cgselect::parallel_select(
                proc,
                mine,
                50,
                algo,
                &SelectionConfig { min_sequential: 8, ..SelectionConfig::with_seed(4) },
            )
            .value
        })
        .unwrap_err();
    // Any loud failure is acceptable; silence is not.
    assert!(!format!("{err}").is_empty());
}

#[test]
fn missing_collective_participant_times_out_with_context() {
    let err = small_timeout()
        .run(|proc| {
            if proc.rank() == 0 {
                let _ = proc.combine(1u64, |a, b| a + b);
            }
            // rank 1 skips the collective entirely
        })
        .unwrap_err();
    let msg = format!("{err}");
    // Depending on interleaving, the divergence surfaces as a timeout, an
    // unconsumed message, or a payload-type mismatch where the skipped
    // collective's slot was taken by the end-of-run barrier — all loud,
    // all pointing at the diverged communication.
    assert!(
        msg.contains("timed out")
            || msg.contains("unconsumed")
            || msg.contains("unexpected payload type"),
        "diagnostic should mention the stuck state: {msg}"
    );
}

#[test]
fn nan_free_float_keys_select_correctly_with_infinities() {
    use cgselect::OrdF64;
    let parts: Vec<Vec<OrdF64>> = vec![
        vec![OrdF64(f64::NEG_INFINITY), OrdF64(1.0)],
        vec![OrdF64(f64::INFINITY), OrdF64(-3.5), OrdF64(0.0)],
    ];
    let cfg = SelectionConfig { min_sequential: 4, ..SelectionConfig::with_seed(5) };
    for (k, want) in [(0u64, f64::NEG_INFINITY), (1, -3.5), (2, 0.0), (3, 1.0), (4, f64::INFINITY)]
    {
        let sel = cgselect::select_on_machine(
            2,
            MachineModel::free(),
            &parts,
            k,
            Algorithm::Randomized,
            &cfg,
        )
        .unwrap();
        assert_eq!(sel.value.get(), want, "k={k}");
    }
}

#[test]
fn invalid_config_fails_before_any_communication() {
    let err = Machine::with_model(2, MachineModel::free())
        .run(|proc| {
            let cfg = SelectionConfig { epsilon: 2.0, ..SelectionConfig::default() };
            cgselect::parallel_select(
                proc,
                vec![proc.rank() as u64],
                0,
                Algorithm::FastRandomized,
                &cfg,
            )
            .value
        })
        .unwrap_err();
    assert!(format!("{err}").contains("epsilon"), "{err}");
}
