//! The extension toolbox: top-k extraction, weighted quantiles, and the
//! runtime's event tracing — the features this library adds beyond the
//! paper's four algorithms.
//!
//! Run with: `cargo run --release --example toolbox`

use cgselect::runtime::render_timeline;
use cgselect::{
    parallel_top_k, parallel_weighted_select, Algorithm, Machine, MachineModel, SelectionConfig,
};
use cgselect_seqsel::KernelRng;

fn main() {
    let p = 4;
    let machine = Machine::with_model(p, MachineModel::cm5());
    let cfg = SelectionConfig::with_seed(31);

    // ------------------------------------------------------------------
    // 1. Distributed top-k: keep the 10 smallest response times in place.
    // ------------------------------------------------------------------
    println!("== top-k: the 10 smallest of 4000 distributed values ==");
    let shares = machine
        .run(|proc| {
            let mut rng = KernelRng::derive(77, proc.rank() as u64);
            let mine: Vec<u64> = (0..1000).map(|_| rng.below(1_000_000)).collect();
            parallel_top_k(proc, mine, 10, Algorithm::FastRandomized, &cfg).0
        })
        .expect("top-k failed");
    for (rank, share) in shares.iter().enumerate() {
        println!("  P{rank} keeps {:?}", share);
    }
    let total: usize = shares.iter().map(Vec::len).sum();
    println!("  total kept: {total} (exactly k, ties broken by rank)\n");

    // ------------------------------------------------------------------
    // 2. Weighted quantile: request sizes weighted by byte count — find
    //    the size below which half of all *bytes* (not requests) fall.
    // ------------------------------------------------------------------
    println!("== weighted quantile: half-of-bytes request size ==");
    let results = machine
        .run(|proc| {
            let mut rng = KernelRng::derive(88, proc.rank() as u64);
            // (request size, bytes transferred)
            let mine: Vec<(u64, u64)> = (0..5000)
                .map(|_| {
                    let size = 1 + rng.below(4096);
                    (size, size) // weight = size itself
                })
                .collect();
            let total_bytes: u64 =
                proc.combine(mine.iter().map(|(_, w)| *w).sum::<u64>(), |a, b| a + b);
            let half = total_bytes.div_ceil(2);
            (parallel_weighted_select(proc, mine, half, &cfg), total_bytes)
        })
        .expect("weighted select failed");
    let (median_size, total_bytes) = results[0];
    println!("  half of the {total_bytes} total bytes come from requests <= {median_size} bytes\n");

    // ------------------------------------------------------------------
    // 3. Tracing: watch the messages of one randomized selection round.
    // ------------------------------------------------------------------
    println!("== trace: first events of a p=4 selection (virtual time) ==");
    let traces = machine
        .run(|proc| {
            proc.trace_enable();
            let mut rng = KernelRng::derive(99, proc.rank() as u64);
            let mine: Vec<u64> = (0..2000).map(|_| rng.next_u64()).collect();
            let _ = cgselect::parallel_select(proc, mine, 4000, Algorithm::Randomized, &cfg);
            proc.take_trace()
        })
        .expect("traced run failed");
    let timeline = render_timeline(&traces);
    for line in timeline.lines().take(18) {
        println!("  {line}");
    }
    let events: usize = traces.iter().map(|t| t.events.len()).sum();
    println!("  … {events} events total across {p} processors");
}
