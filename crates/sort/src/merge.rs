//! k-way merging of sorted runs, with measured costs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cgselect_seqsel::OpCount;

/// Merges sorted `chunks` into one sorted vector.
///
/// Binary-heap k-way merge: `O(n log k)` comparisons, all counted (heap
/// sift costs are charged as `⌈log₂(k)⌉ + 1` comparisons per heap update,
/// the structural upper bound, plus one move per output element).
pub fn kway_merge<T: Copy + Ord>(chunks: Vec<Vec<T>>, ops: &mut OpCount) -> Vec<T> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(T, usize, usize)>> = BinaryHeap::new();
    let k = chunks.iter().filter(|c| !c.is_empty()).count();
    let heap_cost = (k.max(2)).ilog2() as u64 + 1;
    for (ci, chunk) in chunks.iter().enumerate() {
        if let Some(&first) = chunk.first() {
            heap.push(Reverse((first, ci, 0)));
            ops.cmps += heap_cost;
        }
    }
    while let Some(Reverse((val, ci, idx))) = heap.pop() {
        ops.cmps += heap_cost;
        out.push(val);
        ops.moves += 1;
        let next = idx + 1;
        if next < chunks[ci].len() {
            heap.push(Reverse((chunks[ci][next], ci, next)));
            ops.cmps += heap_cost;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_disjoint_runs() {
        let mut ops = OpCount::new();
        let out = kway_merge(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]], &mut ops);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(ops.cmps > 0 && ops.moves == 9);
    }

    #[test]
    fn handles_empty_chunks_and_duplicates() {
        let mut ops = OpCount::new();
        let out = kway_merge(vec![vec![], vec![2, 2, 2], vec![], vec![1, 2, 3]], &mut ops);
        assert_eq!(out, vec![1, 2, 2, 2, 2, 3]);
    }

    #[test]
    fn single_chunk_passthrough() {
        let mut ops = OpCount::new();
        let out = kway_merge(vec![vec![5, 6, 7]], &mut ops);
        assert_eq!(out, vec![5, 6, 7]);
    }

    #[test]
    fn no_chunks() {
        let mut ops = OpCount::new();
        let out: Vec<u32> = kway_merge(vec![], &mut ops);
        assert!(out.is_empty());
    }

    #[test]
    fn large_merge_matches_sort() {
        let mut runs: Vec<Vec<u64>> = Vec::new();
        let mut x = 1u64;
        for i in 0..16 {
            let mut run: Vec<u64> = (0..500 + i * 13)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    x % 10_000
                })
                .collect();
            run.sort_unstable();
            runs.push(run);
        }
        let mut want: Vec<u64> = runs.iter().flatten().copied().collect();
        want.sort_unstable();
        let mut ops = OpCount::new();
        assert_eq!(kway_merge(runs, &mut ops), want);
    }
}
