//! The in-process SPMD backend: the engine's original execution substrate,
//! now behind the [`ExecBackend`] seam.

use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use cgselect_balance::Balancer;
use cgselect_runtime::{Key, Session, ShardStore};

use crate::index::BucketStats;
use crate::EngineConfig;

use super::ops::{self, Shard};
use super::{BackendError, BackendKind, BatchPlan, ExecBackend, ShardBatchOutcome, ShardDeletion};

/// The in-process backend: a persistent [`Session`] whose worker threads
/// keep each `Shard` resident in their typed `ShardStore`, with programs
/// shipped as shared closures. This is exactly the engine's pre-backend
/// execution path, so it is the reference implementation the conformance
/// harness measures [`super::ChannelMp`] against.
pub struct LocalSpmd<T: Key> {
    session: Session,
    balancer: Balancer,
    /// Intra-shard scan fan-out ([`EngineConfig::scan_threads`]); only this
    /// in-process backend honors it — the message-passing backends keep
    /// their workers single-threaded.
    scan_threads: usize,
    _marker: PhantomData<fn(T)>,
}

impl<T: Key> LocalSpmd<T> {
    /// Starts the session and installs the empty shards.
    pub(crate) fn start(cfg: &EngineConfig) -> Result<Self, BackendError> {
        let mut session = Session::with_model(cfg.nprocs, cfg.model);
        let capacity = cfg.sketch_capacity;
        session.run(move |_proc, store| {
            store.insert(ops::init_shard::<T>(capacity));
        })?;
        Ok(LocalSpmd {
            session,
            balancer: cfg.balancer,
            scan_threads: cfg.scan_threads,
            _marker: PhantomData,
        })
    }

    /// The shard installed at construction; its absence means the store was
    /// tampered with, which is a bug.
    fn shard_mut(store: &mut ShardStore) -> &mut Shard<T> {
        store.get_mut::<Shard<T>>().expect("engine shard must be installed")
    }
}

impl<T: Key> ExecBackend<T> for LocalSpmd<T> {
    fn nprocs(&self) -> usize {
        self.session.nprocs()
    }

    fn kind(&self) -> BackendKind {
        BackendKind::LocalSpmd
    }

    fn is_poisoned(&self) -> bool {
        self.session.is_poisoned()
    }

    fn ingest(&mut self, chunks: Vec<Vec<T>>) -> Result<Vec<u64>, BackendError> {
        assert_eq!(chunks.len(), self.session.nprocs(), "one ingest chunk per shard");
        // Each worker takes (moves) its own chunk out of the shared slots —
        // ingest is the engine's primary data path and must not copy the
        // batch a second time.
        let chunks: Arc<Vec<Mutex<Option<Vec<T>>>>> =
            Arc::new(chunks.into_iter().map(|c| Mutex::new(Some(c))).collect());
        Ok(self.session.run(move |proc, store| {
            let mine: Vec<T> = chunks[proc.rank()]
                .lock()
                .expect("ingest chunk lock")
                .take()
                .expect("each rank takes its chunk exactly once");
            ops::ingest_shard(proc, Self::shard_mut(store), mine)
        })?)
    }

    fn delete(&mut self, values: Vec<T>) -> Result<Vec<ShardDeletion>, BackendError> {
        let sorted = Arc::new(values);
        Ok(self
            .session
            .run(move |proc, store| ops::delete_shard(proc, Self::shard_mut(store), &sorted))?)
    }

    fn rebalance(&mut self) -> Result<Vec<u64>, BackendError> {
        let balancer = self.balancer;
        Ok(self
            .session
            .run(move |proc, store| ops::rebalance_shard(proc, Self::shard_mut(store), balancer))?)
    }

    fn build_index(
        &mut self,
        buckets: usize,
    ) -> Result<(Vec<cgselect_seqsel::SepBound<T>>, Vec<BucketStats<T>>), BackendError> {
        let per_proc = self.session.run(move |proc, store| {
            ops::build_index_shard(proc, Self::shard_mut(store), buckets)
        })?;
        let mut bounds = Vec::new();
        let mut stats = Vec::with_capacity(per_proc.len());
        for (rank, (b, s)) in per_proc.into_iter().enumerate() {
            if rank == 0 {
                bounds = b;
            } else {
                debug_assert_eq!(bounds, b, "splitter bounds must agree across shards");
            }
            stats.push(s);
        }
        Ok((bounds, stats))
    }

    fn merge_delta(&mut self) -> Result<Vec<BucketStats<T>>, BackendError> {
        Ok(self
            .session
            .run(move |proc, store| ops::merge_delta_shard(proc, Self::shard_mut(store)))?)
    }

    fn execute(&mut self, plan: &BatchPlan<T>) -> Result<Vec<ShardBatchOutcome<T>>, BackendError> {
        let plan = plan.clone();
        let scan_threads = self.scan_threads;
        Ok(self.session.run(move |proc, store| {
            ops::execute_shard(proc, Self::shard_mut(store), &plan, scan_threads)
        })?)
    }

    fn export_sketches(&mut self) -> Result<Vec<crate::sketch::EpsSketch<T>>, BackendError> {
        Ok(self.session.run(move |_proc, store| Self::shard_mut(store).sketch.clone())?)
    }
}
