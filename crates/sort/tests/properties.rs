//! Property tests: the parallel sorts must produce a globally sorted
//! permutation of their input for arbitrary shard shapes, and rank lookup
//! must agree with the flattened oracle.

use cgselect_runtime::{Machine, MachineModel};
use cgselect_sort::{
    bitonic_sort, sample_sort, select_global_ranks, sorted_ranks_of, SampleSortAlgo,
};
use proptest::prelude::*;

fn run_sort<F>(parts: &[Vec<u64>], f: F) -> Vec<Vec<u64>>
where
    F: Fn(&mut cgselect_runtime::Proc, Vec<u64>) -> Vec<u64> + Send + Sync,
{
    let p = parts.len();
    Machine::with_model(p, MachineModel::free())
        .run(|proc| {
            let mine = parts[proc.rank()].clone();
            f(proc, mine)
        })
        .unwrap()
}

fn assert_globally_sorted(parts: &[Vec<u64>], out: &[Vec<u64>]) {
    let flat: Vec<u64> = out.iter().flatten().copied().collect();
    let mut want: Vec<u64> = parts.iter().flatten().copied().collect();
    want.sort_unstable();
    assert_eq!(flat, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sample_sort_sorts_arbitrary_shards(
        parts in prop::collection::vec(prop::collection::vec(0u64..1000, 0..120), 1..7),
    ) {
        let out = run_sort(&parts, sample_sort);
        assert_globally_sorted(&parts, &out);
    }

    #[test]
    fn bitonic_sorts_power_of_two_machines(
        parts in prop::collection::vec(prop::collection::vec(0u64..1000, 0..80), 1..4)
            .prop_map(|mut v| {
                while !v.len().is_power_of_two() { v.push(Vec::new()); }
                v
            }),
    ) {
        let out = run_sort(&parts, bitonic_sort);
        assert_globally_sorted(&parts, &out);
    }

    #[test]
    fn global_rank_lookup_matches_oracle(
        parts in prop::collection::vec(prop::collection::vec(0u64..500, 0..60), 1..6)
            .prop_filter("non-empty", |ps| ps.iter().any(|v| !v.is_empty())),
        rank_fracs in prop::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let total: usize = parts.iter().map(Vec::len).sum();
        let ranks: Vec<u64> =
            rank_fracs.iter().map(|f| ((total as f64 * f) as u64).min(total as u64 - 1)).collect();
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let want: Vec<u64> = ranks.iter().map(|&r| all[r as usize]).collect();

        // Through each backend of sorted_ranks_of (bitonic only when p is a
        // power of two).
        let p = parts.len();
        let mut algos = vec![SampleSortAlgo::Psrs, SampleSortAlgo::GatherSort];
        if p.is_power_of_two() {
            algos.push(SampleSortAlgo::Bitonic);
        }
        for algo in algos {
            let out = Machine::with_model(p, MachineModel::free())
                .run(|proc| {
                    let mine = parts[proc.rank()].clone();
                    sorted_ranks_of(proc, algo, mine, &ranks)
                })
                .unwrap();
            for got in out {
                prop_assert_eq!(&got, &want, "algo {:?}", algo);
            }
        }

        // And directly via select_global_ranks over pre-sorted shards in
        // global order (rank-major blocks).
        let mut blocks: Vec<Vec<u64>> = Vec::new();
        let per = total / p;
        let mut it = all.clone().into_iter();
        for i in 0..p {
            let take = if i == p - 1 { total - per * (p - 1) } else { per };
            blocks.push(it.by_ref().take(take).collect());
        }
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mine = blocks[proc.rank()].clone();
                select_global_ranks(proc, &mine, &ranks)
            })
            .unwrap();
        for got in out {
            prop_assert_eq!(&got, &want);
        }
    }
}
