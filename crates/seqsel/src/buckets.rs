//! The local bucket structure of the paper's bucket-based selection
//! algorithm (§3.2).
//!
//! Each processor preprocesses its local data into up to `log p` buckets
//! such that every element of bucket `i` is smaller than or equal to the
//! separator `seps[i]`, which is strictly smaller than every element of
//! bucket `i+1`. The buckets are built by recursive median splitting in
//! `O((n/p) log log p)` time. Afterwards, two per-iteration operations
//! become cheap:
//!
//! * **local median by rank** — the bucket containing a rank is found by
//!   binary search over the bucket boundaries, then a sequential selection
//!   runs inside that one bucket (`O(log log p + n/(p log p))`);
//! * **split by an estimated median** — only the single straddling bucket
//!   must be partitioned; all other buckets are counted wholesale via the
//!   separators, and the partition point becomes a new bucket boundary.
//!
//! The active window of the selection algorithm always begins and ends on
//! bucket boundaries; both operations preserve that invariant.

use std::ops::Range;

use crate::ops::OpCount;
use crate::partition::{partition3, partition_le};
use crate::rng::KernelRng;
use crate::{select_with, LocalKernel};

/// Local data reorganized into value-ordered buckets.
///
/// Invariants (checked by `debug_validate` in tests):
/// * `bounds` is strictly increasing, `bounds[0] == 0`,
///   `bounds.last() == data.len()` (except the empty structure `[0, 0]`);
/// * `seps.len() + 2 == bounds.len()`;
/// * all elements of buckets `0..=i` are ≤ `seps[i]` and all elements of
///   buckets `i+1..` are > `seps[i]`.
#[derive(Debug, Clone)]
pub struct Buckets<T> {
    data: Vec<T>,
    bounds: Vec<usize>,
    seps: Vec<T>,
}

impl<T: Copy + Ord> Buckets<T> {
    /// Builds the structure over `data` with at most `max_buckets` buckets
    /// (the paper uses `log p`), by recursive median splitting with the
    /// chosen sequential kernel.
    ///
    /// Degenerate splits (heavily duplicated data where the median equals
    /// the maximum) terminate early with fewer buckets; correctness is
    /// unaffected.
    pub fn build(
        data: Vec<T>,
        max_buckets: usize,
        kernel: LocalKernel,
        rng: &mut KernelRng,
        ops: &mut OpCount,
    ) -> Self {
        assert!(max_buckets >= 1, "need at least one bucket");
        let mut this = Buckets { data, bounds: vec![0], seps: Vec::new() };
        let len = this.data.len();
        if len == 0 {
            this.bounds.push(0);
            return this;
        }
        this.build_rec(0, len, max_buckets, kernel, rng, ops);
        this
    }

    fn build_rec(
        &mut self,
        start: usize,
        end: usize,
        nb: usize,
        kernel: LocalKernel,
        rng: &mut KernelRng,
        ops: &mut OpCount,
    ) {
        let len = end - start;
        if nb <= 1 || len <= 1 {
            self.bounds.push(end);
            return;
        }
        let slice = &mut self.data[start..end];
        let m = select_with(kernel, slice, (len - 1) / 2, rng, ops);
        let split = partition_le(&mut self.data[start..end], m, ops);
        if split == len {
            // Everything ≤ m (e.g. all keys equal): no proper split exists
            // here; keep this range as a single bucket.
            self.bounds.push(end);
            return;
        }
        let nb_left = nb.div_ceil(2);
        self.build_rec(start, start + split, nb_left, kernel, rng, ops);
        self.seps.push(m);
        self.build_rec(start + split, end, nb - nb_left, kernel, rng, ops);
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of buckets currently in the structure (splits add buckets).
    pub fn num_buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The underlying (bucket-permuted) element storage.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Copies out the elements of an aligned window, for the final gather.
    pub fn window_elements(&self, window: Range<usize>) -> Vec<T> {
        self.data[window].to_vec()
    }

    /// Full range of the structure — the initial active window.
    pub fn full_window(&self) -> Range<usize> {
        0..self.data.len()
    }

    fn bound_index(&self, pos: usize, what: &str) -> usize {
        self.bounds
            .binary_search(&pos)
            .unwrap_or_else(|_| panic!("window {what} {pos} is not on a bucket boundary"))
    }

    /// Returns the element of 0-based `rank` within the aligned `window`
    /// (which must start and end on bucket boundaries).
    ///
    /// Finds the bucket containing the rank through the boundary offsets —
    /// because buckets are value-ordered, the window's rank-r element lives
    /// in the bucket covering position `window.start + r` — then selects
    /// within that single bucket.
    ///
    /// # Panics
    /// Panics if the window is misaligned or `rank >= window.len()`.
    pub fn select_rank(
        &mut self,
        window: Range<usize>,
        rank: usize,
        kernel: LocalKernel,
        rng: &mut KernelRng,
        ops: &mut OpCount,
    ) -> T {
        assert!(rank < window.len(), "rank {rank} out of range for window of {}", window.len());
        let pos = window.start + rank;
        // Binary search over bucket boundaries: O(log #buckets) comparisons.
        let b = match self.bounds.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        ops.cmps += (self.bounds.len().ilog2() + 1) as u64;
        let bs = self.bounds[b];
        let be = self.bounds[b + 1];
        debug_assert!(bs >= window.start && be <= window.end, "window must be aligned");
        select_with(kernel, &mut self.data[bs..be], pos - bs, rng, ops)
    }

    /// Counts the elements ≤ `v` inside the aligned `window`, partitioning
    /// only the straddling bucket (paper §3.2: "only the elements in this
    /// bucket need to be split") and inserting the partition point as a new
    /// bucket boundary so that `window.start + count` is itself aligned.
    ///
    /// Returns the count relative to `window.start`.
    pub fn split_le(&mut self, window: Range<usize>, v: T, ops: &mut OpCount) -> usize {
        if window.is_empty() {
            return 0;
        }
        let bl = self.bound_index(window.start, "start");
        let br = self.bound_index(window.end, "end");
        debug_assert!(bl < br);

        // Locate the straddling bucket via the separators: every bucket
        // whose separator is < v lies entirely at or below v; every bucket
        // strictly after a separator ≥ v lies entirely above v.
        let seps_window = &self.seps[bl..br - 1];
        let mut cmps = 0u64;
        let pp = seps_window.partition_point(|s| {
            cmps += 1;
            *s < v
        });
        ops.cmps += cmps.max(1);
        let b = bl + pp;

        let bs = self.bounds[b];
        let be = self.bounds[b + 1];
        let idx = partition_le(&mut self.data[bs..be], v, ops);
        let cut = bs + idx;
        if cut > bs && cut < be {
            // Proper split: record the new boundary and its separator.
            self.bounds.insert(b + 1, cut);
            self.seps.insert(b, v);
        }
        cut - window.start
    }

    /// Counts `(lt, le)` — the elements `< v` and `≤ v` inside the aligned
    /// `window` — with a single three-way partition of the straddling
    /// bucket. Both counts become aligned bucket boundaries, so the caller
    /// can narrow its window to the `< v` zone, the `> v` zone, *or* detect
    /// that the target sits inside `v`'s equality class (`lt ≤ rank < le`),
    /// which is what makes the bucket-based algorithm immune to the
    /// duplicate-key livelock of a plain `≤`/`>` split.
    pub fn split_bracket(
        &mut self,
        window: Range<usize>,
        v: T,
        ops: &mut OpCount,
    ) -> (usize, usize) {
        if window.is_empty() {
            return (0, 0);
        }
        let bl = self.bound_index(window.start, "start");
        let br = self.bound_index(window.end, "end");
        debug_assert!(bl < br);

        let seps_window = &self.seps[bl..br - 1];
        let mut cmps = 0u64;
        let pp = seps_window.partition_point(|s| {
            cmps += 1;
            *s < v
        });
        ops.cmps += cmps.max(1);
        let b = bl + pp;

        let bs = self.bounds[b];
        let be = self.bounds[b + 1];
        let (a_rel, b_rel) = partition3(&mut self.data[bs..be], v, v, ops);
        let cut1 = bs + a_rel;
        let cut2 = bs + b_rel;
        // Insert the upper boundary first; its separator is v itself
        // (left zone ≤ v < right zone).
        if cut2 > bs && cut2 < be {
            self.bounds.insert(b + 1, cut2);
            self.seps.insert(b, v);
        }
        // The lower boundary separates "< v" from "== v"; its separator is
        // the maximum of the strictly-smaller zone.
        if cut1 > bs && cut1 < cut2 {
            let sep1 = *self.data[bs..cut1].iter().max().expect("non-empty lt zone");
            ops.cmps += (cut1 - bs) as u64;
            self.bounds.insert(b + 1, cut1);
            self.seps.insert(b, sep1);
        }
        (cut1 - window.start, cut2 - window.start)
    }

    /// Exhaustively validates the structural invariants (test helper).
    pub fn debug_validate(&self) {
        assert!(self.bounds.len() >= 2);
        assert_eq!(self.bounds[0], 0);
        assert_eq!(*self.bounds.last().unwrap(), self.data.len());
        assert_eq!(self.seps.len() + 2, self.bounds.len());
        for w in self.bounds.windows(2) {
            if self.data.is_empty() {
                assert!(w[0] <= w[1]);
            } else {
                assert!(w[0] < w[1], "bounds not strictly increasing: {:?}", self.bounds);
            }
        }
        for (i, sep) in self.seps.iter().enumerate() {
            let left = &self.data[self.bounds[i]..self.bounds[i + 1]];
            let right = &self.data[self.bounds[i + 1]..self.bounds[i + 2]];
            assert!(left.iter().all(|x| x <= sep), "bucket {i} exceeds its separator");
            assert!(right.iter().all(|x| x > sep), "bucket {} not above separator {i}", i + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_u64(data: Vec<u64>, nb: usize) -> Buckets<u64> {
        let mut rng = KernelRng::new(3);
        let mut ops = OpCount::new();
        let b = Buckets::build(data, nb, LocalKernel::Randomized, &mut rng, &mut ops);
        b.debug_validate();
        b
    }

    #[test]
    fn build_orders_buckets() {
        let data: Vec<u64> = vec![9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 15, 12, 11, 14, 13, 10];
        let b = build_u64(data.clone(), 4);
        assert!(b.num_buckets() >= 2 && b.num_buckets() <= 4);
        assert_eq!(b.len(), data.len());
        // Multiset preserved.
        let mut content = b.data().to_vec();
        content.sort_unstable();
        let mut orig = data;
        orig.sort_unstable();
        assert_eq!(content, orig);
    }

    #[test]
    fn build_empty_and_tiny() {
        let b = build_u64(vec![], 8);
        assert!(b.is_empty());
        assert_eq!(b.num_buckets(), 1);
        let b = build_u64(vec![42], 8);
        assert_eq!(b.num_buckets(), 1);
        assert_eq!(b.data(), &[42]);
    }

    #[test]
    fn build_all_equal_degenerates_gracefully() {
        let b = build_u64(vec![7; 100], 8);
        assert_eq!(b.num_buckets(), 1);
    }

    #[test]
    fn select_rank_matches_oracle() {
        let mut rng = KernelRng::new(11);
        let data: Vec<u64> = (0..500).map(|_| rng.next_u64() % 100).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();

        let mut b = build_u64(data, 6);
        let w = b.full_window();
        let mut ops = OpCount::new();
        for rank in [0usize, 1, 100, 250, 499] {
            let got = b.select_rank(w.clone(), rank, LocalKernel::Randomized, &mut rng, &mut ops);
            assert_eq!(got, sorted[rank], "rank={rank}");
            b.debug_validate();
        }
    }

    #[test]
    fn split_le_counts_and_stays_aligned() {
        let mut rng = KernelRng::new(13);
        let data: Vec<u64> = (0..300).map(|_| rng.next_u64() % 1000).collect();
        let oracle = |v: u64| data.iter().filter(|&&x| x <= v).count();

        let mut b = build_u64(data.clone(), 5);
        let mut ops = OpCount::new();
        for v in [0u64, 13, 500, 700, 999, 1500] {
            let w = b.full_window();
            let cnt = b.split_le(w, v, &mut ops);
            assert_eq!(cnt, oracle(v), "v={v}");
            b.debug_validate();
        }
    }

    #[test]
    fn split_then_narrow_window_iterates_like_the_algorithm() {
        // Simulate the selection loop: repeatedly split on a value and
        // shrink the window to one side; counts must stay consistent.
        let mut rng = KernelRng::new(17);
        let data: Vec<u64> = (0..400).map(|_| rng.next_u64() % 256).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();

        let mut b = build_u64(data, 6);
        let mut ops = OpCount::new();
        let mut window = b.full_window();
        // Narrow towards global rank 137.
        let target_rank = 137usize;
        let mut rank = target_rank;
        for _ in 0..6 {
            if window.len() <= 4 {
                break;
            }
            let guess = b.select_rank(
                window.clone(),
                rank / 2,
                LocalKernel::Randomized,
                &mut rng,
                &mut ops,
            );
            let cnt = b.split_le(window.clone(), guess, &mut ops);
            b.debug_validate();
            if rank < cnt {
                window = window.start..window.start + cnt;
            } else {
                window = window.start + cnt..window.end;
                rank -= cnt;
            }
        }
        let mut remaining = b.window_elements(window.clone());
        remaining.sort_unstable();
        assert_eq!(remaining[rank], sorted[target_rank]);
    }

    #[test]
    fn split_le_value_below_everything() {
        let mut b = build_u64(vec![10, 20, 30, 40, 50, 60, 70, 80], 4);
        let mut ops = OpCount::new();
        let w = b.full_window();
        assert_eq!(b.split_le(w, 5, &mut ops), 0);
        b.debug_validate();
    }

    #[test]
    fn split_le_empty_window() {
        let mut b = build_u64(vec![1, 2, 3, 4], 2);
        let mut ops = OpCount::new();
        assert_eq!(b.split_le(0..0, 2, &mut ops), 0);
    }

    #[test]
    #[should_panic(expected = "not on a bucket boundary")]
    fn misaligned_window_panics() {
        let mut b = build_u64((0..64).collect(), 4);
        let mut ops = OpCount::new();
        // Position 1 is inside the first bucket, not a boundary.
        let _ = b.split_le(1..64, 10, &mut ops);
    }

    #[test]
    fn split_bracket_counts_lt_and_le() {
        let mut rng = KernelRng::new(23);
        let data: Vec<u64> = (0..400).map(|_| rng.next_u64() % 50).collect();
        let oracle_lt = |v: u64| data.iter().filter(|&&x| x < v).count();
        let oracle_le = |v: u64| data.iter().filter(|&&x| x <= v).count();

        let mut b = build_u64(data.clone(), 6);
        let mut ops = OpCount::new();
        for v in [0u64, 7, 25, 49, 60] {
            let w = b.full_window();
            let (lt, le) = b.split_bracket(w, v, &mut ops);
            assert_eq!(lt, oracle_lt(v), "v={v}");
            assert_eq!(le, oracle_le(v), "v={v}");
            b.debug_validate();
        }
    }

    #[test]
    fn split_bracket_all_equal() {
        let mut b = build_u64(vec![5; 64], 4);
        let mut ops = OpCount::new();
        let w = b.full_window();
        let (lt, le) = b.split_bracket(w, 5, &mut ops);
        assert_eq!((lt, le), (0, 64));
        b.debug_validate();
    }

    #[test]
    fn split_bracket_narrow_to_eq_class() {
        // After a bracket split, [start+lt, start+le) is exactly the
        // equality class of v.
        let data: Vec<u64> = vec![9, 1, 5, 5, 7, 0, 5, 3, 8, 2, 5, 5];
        let mut b = build_u64(data, 4);
        let mut ops = OpCount::new();
        let w = b.full_window();
        let (lt, le) = b.split_bracket(w.clone(), 5, &mut ops);
        let eq = b.window_elements(w.start + lt..w.start + le);
        assert_eq!(eq, vec![5; 5]);
        b.debug_validate();
    }

    #[test]
    fn deterministic_kernel_build() {
        let mut rng = KernelRng::new(0);
        let mut ops = OpCount::new();
        let data: Vec<u64> = (0..128).rev().collect();
        let b = Buckets::build(data, 8, LocalKernel::Deterministic, &mut rng, &mut ops);
        b.debug_validate();
        assert!(b.num_buckets() > 1);
        assert!(ops.cmps > 0);
    }
}
