//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this workspace ships the
//! small slice of crossbeam's API that `cgselect-runtime` and
//! `cgselect-engine` actually use: unbounded and bounded MPSC channels with
//! cloneable senders, timeout-aware receives, non-blocking `try_send`
//! (admission control for the engine's submission queue) and disconnect
//! detection, plus scoped thread spawning for the engine's parallel
//! intra-shard scans. It is implemented on `std::sync`/`std::thread`
//! primitives; throughput is merely adequate (the runtime's virtual
//! processors block on `recv_timeout`, so the channel is never the
//! bottleneck in the modeled-time experiments).
//!
//! **Registry swap note.** [`channel`] mirrors `crossbeam-channel` 0.5
//! (`crossbeam::channel`): `unbounded`/`bounded` constructors, the
//! `Sender`/`Receiver` methods used here, and the same error enums.
//! [`thread`] mirrors `crossbeam-utils` 0.8's `thread::scope`
//! (`crossbeam::thread::scope`): same `scope(|s| …) -> Result<R>` shape,
//! implemented on `std::thread::scope` (one documented difference: a
//! panicking child propagates at join instead of surfacing as `Err`).
//! When a registry is reachable, point `[workspace.dependencies]` at the
//! real crates and delete this shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads: spawn borrowing workers that are guaranteed joined when
/// the scope closes. Mirrors `crossbeam::thread::scope`, delegating to
/// `std::thread::scope` (std has offered the same structured-concurrency
/// shape since 1.63).
pub mod thread {
    /// Runs `f` with a scope in which borrowed threads can be spawned; all
    /// spawned threads are joined before `scope` returns.
    ///
    /// Matches `crossbeam_utils::thread::scope`'s `Result`-returning shape
    /// so call sites survive the eventual registry swap unchanged. One
    /// documented semantic difference: under `std::thread::scope` a panic
    /// in an unjoined child re-raises in the parent at scope exit, so this
    /// shim never actually returns `Err` — real crossbeam would instead
    /// yield `Err` carrying the panic payloads.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let mut partials = vec![0u64; 2];
            let ok = super::scope(|s| {
                let (lo, hi) = data.split_at(2);
                let (p0, p1) = partials.split_at_mut(1);
                s.spawn(move || p0[0] = lo.iter().sum());
                s.spawn(move || p1[0] = hi.iter().sum());
            });
            assert!(ok.is_ok());
            assert_eq!(partials, vec![3, 7]);
        }
    }
}

/// Multi-producer single-consumer unbounded and bounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        /// `None` for unbounded channels, `Some(cap)` for bounded ones.
        capacity: Option<usize>,
        senders: usize,
        receiver_alive: bool,
    }

    impl<T> State<T> {
        fn is_full(&self) -> bool {
            self.capacity.is_some_and(|cap| self.queue.len() >= cap)
        }
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
        /// Signalled when a bounded channel's queue makes room.
        space: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable; the channel
    /// disconnects when every `Sender` has been dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when the receiver has been dropped;
    /// carries the unsent message back to the caller.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent message
    /// back to the caller.
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// The receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// The message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with_capacity(None)
    }

    /// Creates a bounded channel holding at most `cap` queued messages.
    /// [`Sender::send`] blocks while full; [`Sender::try_send`] fails fast
    /// with [`TrySendError::Full`] instead. `cap` must be at least 1 (the
    /// zero-capacity rendezvous channel of real crossbeam is not shimmed).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "the shim does not implement zero-capacity rendezvous channels");
        channel_with_capacity(Some(cap))
    }

    fn channel_with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake a receiver blocked in recv_timeout so it can observe
                // the disconnect instead of sleeping out its full timeout.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.receiver_alive = false;
            drop(st);
            // Wake senders blocked waiting for room in a bounded channel so
            // they can observe the disconnect.
            self.shared.space.notify_all();
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded channel is at
        /// capacity; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if !st.receiver_alive {
                    return Err(SendError(value));
                }
                if !st.is_full() {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.ready.notify_one();
                    return Ok(());
                }
                st = self.shared.space.wait(st).expect("channel poisoned");
            }
        }

        /// Enqueues `value` without blocking; fails fast when a bounded
        /// channel is at capacity or the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if !st.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if st.is_full() {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel poisoned").queue.len()
        }

        /// True if no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, the channel disconnects, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) =
                    self.shared.ready.wait_timeout(st, deadline - now).expect("channel poisoned");
                st = guard;
            }
        }

        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            match st.queue.pop_front() {
                Some(v) => {
                    drop(st);
                    self.shared.space.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel poisoned").queue.len()
        }

        /// True if no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert!(rx.is_empty());
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_try_send_rejects_when_full_and_recovers() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.len(), 2);
            match tx.try_send(3) {
                Err(TrySendError::Full(v)) => assert_eq!(v, 3),
                other => panic!("expected Full, got {other:?}"),
            }
            // Draining makes room again.
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Ok(3));
            assert_eq!(rx.len(), 0);
        }

        #[test]
        fn bounded_blocking_send_waits_for_room() {
            let (tx, rx) = bounded::<u64>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the receiver pops 1
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(2));
            h.join().unwrap();
        }

        #[test]
        fn bounded_send_to_dropped_receiver_fails_fast() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap(); // channel now full
            drop(rx);
            // A blocked sender must observe the disconnect, not hang.
            assert!(tx.send(2).is_err());
            match tx.try_send(3) {
                Err(TrySendError::Disconnected(v)) => assert_eq!(v, 3),
                other => panic!("expected Disconnected, got {other:?}"),
            }
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded::<u64>();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }
    }
}
