//! Weighted selection: quantiles by cumulative weight.
//!
//! Generalizes the paper's weighted-median idea (§3.2) from "p local
//! medians weighted by their counts" to full *data-level* weighted
//! quantiles: given distributed `(key, weight)` pairs and a target
//! cumulative weight `t`, find the smallest key `v` such that the total
//! weight of pairs with key ≤ `v` reaches `t`. With unit weights this is
//! exactly ordinary selection of rank `t−1`.
//!
//! The algorithm is the randomized selection loop with weight-aware
//! narrowing: shared random pivot, three-way partition, Combine of the
//! zone *weights*, discard the zone that cannot contain the crossing point.

use cgselect_runtime::{Key, Proc, PHASE_FINISH};
use cgselect_seqsel::KernelRng;

use crate::SelectionConfig;

/// A `(key, weight)` pair ordered by key — the element type of weighted
/// selection.
pub type Weighted<T> = (T, u64);

/// Finds the smallest key whose cumulative weight (over keys ≤ it) reaches
/// `target_weight`.
///
/// # Panics
/// Panics if the total weight is zero or `target_weight` is zero or
/// exceeds the total (collectively).
pub fn parallel_weighted_select<T: Key>(
    proc: &mut Proc,
    mut data: Vec<Weighted<T>>,
    target_weight: u64,
    cfg: &SelectionConfig,
) -> T {
    cfg.validate();
    let p = proc.nprocs();
    let (mut n, total_w) = proc
        .combine((data.len() as u64, data.iter().map(|(_, w)| *w).sum::<u64>()), |a, b| {
            (a.0 + b.0, a.1 + b.1)
        });
    assert!(total_w > 0, "weighted selection needs positive total weight");
    assert!(
        (1..=total_w).contains(&target_weight),
        "target weight {target_weight} outside [1, {total_w}]"
    );

    let threshold = cfg.threshold(p);
    let mut shared_rng = KernelRng::new(cfg.seed ^ 0x7765_6967); // "weig"
    let mut target = target_weight;
    let mut iterations = 0u32;

    while n > threshold {
        iterations += 1;
        assert!(
            iterations <= cfg.max_iters,
            "weighted selection exceeded {} iterations",
            cfg.max_iters
        );

        // Shared pivot draw over element positions (weights bias only the
        // narrowing decision, not the pivot choice).
        let idx = shared_rng.below(n);
        let len = data.len() as u64;
        let before = proc.exclusive_prefix_sum(len);
        let mine = (before <= idx && idx < before + len).then(|| data[(idx - before) as usize].0);
        let pivot: T = proc.bcast_from_owner(mine);

        // Three-way partition by key, tallying zone counts and weights.
        let mut lt: Vec<Weighted<T>> = Vec::new();
        let mut eq: Vec<Weighted<T>> = Vec::new();
        let mut gt: Vec<Weighted<T>> = Vec::new();
        let mut w_lt = 0u64;
        let mut w_eq = 0u64;
        for &(k, w) in &data {
            if k < pivot {
                w_lt += w;
                lt.push((k, w));
            } else if k == pivot {
                w_eq += w;
                eq.push((k, w));
            } else {
                gt.push((k, w));
            }
        }
        proc.charge_ops(2 * data.len() as u64); // compare + move per pair

        let sums = proc.combine((lt.len() as u64, w_lt, eq.len() as u64, w_eq), |a, b| {
            (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3)
        });
        let (c_lt, gw_lt, c_eq, gw_eq) = sums;

        if target <= gw_lt {
            data = lt;
            n = c_lt;
        } else if target <= gw_lt + gw_eq {
            return pivot;
        } else {
            data = gt;
            target -= gw_lt + gw_eq;
            n -= c_lt + c_eq;
        }
    }

    // Sequential finish: gather the surviving pairs, sort by key, scan the
    // cumulative weight.
    proc.phase_begin(PHASE_FINISH);
    let gathered = proc.gather_flat(0, data);
    let answer: Option<T> = gathered.map(|mut pairs| {
        let mut cmps = 0u64;
        pairs.sort_unstable_by(|a, b| {
            cmps += 1;
            a.0.cmp(&b.0)
        });
        proc.charge_ops(cmps + pairs.len() as u64);
        let mut acc = 0u64;
        for (k, w) in &pairs {
            acc += w;
            if acc >= target {
                return *k;
            }
        }
        unreachable!("target weight is within the surviving total")
    });
    let v = proc.broadcast(0, answer);
    proc.phase_end(PHASE_FINISH);
    v
}

/// The weighted median: smallest key covering half the total weight
/// (⌈W/2⌉), matching `cgselect_seqsel::weighted_median`'s definition.
pub fn parallel_weighted_median<T: Key>(
    proc: &mut Proc,
    data: Vec<Weighted<T>>,
    cfg: &SelectionConfig,
) -> T {
    let total_w = proc.combine(data.iter().map(|(_, w)| *w).sum::<u64>(), |a, b| a + b);
    assert!(total_w > 0, "weighted median needs positive total weight");
    parallel_weighted_select(proc, data, total_w.div_ceil(2), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel};

    fn oracle(parts: &[Vec<Weighted<u64>>], target: u64) -> u64 {
        let mut all: Vec<Weighted<u64>> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut acc = 0;
        for (k, w) in all {
            acc += w;
            if acc >= target {
                return k;
            }
        }
        unreachable!()
    }

    fn run(parts: &[Vec<Weighted<u64>>], target: u64) -> u64 {
        let p = parts.len();
        let cfg = SelectionConfig { min_sequential: 16, ..SelectionConfig::with_seed(9) };
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| parallel_weighted_select(proc, parts[proc.rank()].clone(), target, &cfg))
            .unwrap();
        assert!(out.iter().all(|v| *v == out[0]));
        out[0]
    }

    #[test]
    fn unit_weights_reduce_to_selection() {
        let parts: Vec<Vec<Weighted<u64>>> = vec![
            (0..50).map(|i| (i * 7 % 100, 1)).collect(),
            (0..50).map(|i| (i * 13 % 100, 1)).collect(),
        ];
        for t in [1u64, 25, 50, 100] {
            assert_eq!(run(&parts, t), oracle(&parts, t), "t={t}");
        }
    }

    #[test]
    fn heavy_weights_pull_the_quantile() {
        // One heavy key dominates half the weight.
        let parts: Vec<Vec<Weighted<u64>>> =
            vec![vec![(10, 1), (20, 100), (30, 1)], vec![(5, 1), (25, 1)]];
        for t in [1u64, 2, 3, 50, 102, 104] {
            assert_eq!(run(&parts, t), oracle(&parts, t), "t={t}");
        }
    }

    #[test]
    fn zero_weight_pairs_are_skipped() {
        let parts: Vec<Vec<Weighted<u64>>> = vec![vec![(1, 0), (2, 5)], vec![(0, 0), (3, 5)]];
        assert_eq!(run(&parts, 5), 2);
        assert_eq!(run(&parts, 6), 3);
    }

    #[test]
    fn larger_scale_matches_oracle() {
        let p = 4;
        let parts: Vec<Vec<Weighted<u64>>> = (0..p as u64)
            .map(|r| {
                (0..3000u64).map(|i| ((i * p as u64 + r) * 2654435761 % 10_000, i % 7)).collect()
            })
            .collect();
        let total: u64 = parts.iter().flatten().map(|(_, w)| w).sum();
        for t in [1u64, total / 4, total / 2, total] {
            assert_eq!(run(&parts, t), oracle(&parts, t), "t={t}");
        }
    }

    #[test]
    fn weighted_median_definition() {
        let parts: Vec<Vec<Weighted<u64>>> = vec![vec![(1, 1), (2, 1)], vec![(3, 1), (4, 1)]];
        let cfg = SelectionConfig { min_sequential: 16, ..SelectionConfig::with_seed(9) };
        let out = Machine::with_model(2, MachineModel::free())
            .run(|proc| parallel_weighted_median(proc, parts[proc.rank()].clone(), &cfg))
            .unwrap();
        // W = 4, ceil(W/2) = 2 -> key 2 (the lower weighted median).
        assert_eq!(out[0], 2);
    }

    #[test]
    fn out_of_range_target_fails() {
        let parts: Vec<Vec<Weighted<u64>>> = vec![vec![(1, 2)], vec![(2, 2)]];
        let err = Machine::with_model(2, MachineModel::free())
            .run(|proc| {
                parallel_weighted_select(
                    proc,
                    parts[proc.rank()].clone(),
                    5,
                    &SelectionConfig::with_seed(1),
                )
            })
            .unwrap_err();
        assert!(format!("{err}").contains("outside"));
    }
}
