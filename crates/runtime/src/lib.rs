//! # cgselect-runtime — a coarse-grained parallel machine in a library
//!
//! This crate implements the abstract machine of *Al-Furaih, Aluru, Goil,
//! Ranka — "Practical Algorithms for Selection on Coarse-Grained Parallel
//! Computers"* (IPPS 1996), §2: `p` relatively powerful processors connected
//! by an interconnection network that is modeled as a **virtual crossbar**
//! with a **two-level cost model** — every message costs a start-up overhead
//! `τ` plus `μ` seconds per byte, independent of which pair of processors
//! communicates.
//!
//! The paper ran on a Thinking Machines CM-5. This crate *is* the substitute
//! for that machine: each of the `p` virtual processors is an OS thread, and
//! all of the paper's communication primitives (§2.2) are provided on top of
//! typed point-to-point message passing:
//!
//! | Paper primitive       | Method on [`Proc`]                  | Modeled cost          |
//! |-----------------------|-------------------------------------|-----------------------|
//! | Broadcast             | [`Proc::broadcast`]                 | `O((τ+μ) log p)`      |
//! | Combine               | [`Proc::combine`]                   | `O((τ+μ) log p)`      |
//! | Parallel Prefix       | [`Proc::scan`]                      | `O((τ+μ) log p)`      |
//! | Gather                | [`Proc::gather`] / [`Proc::gatherv`]| `O(τ log p + μp·m)`   |
//! | Global Concatenate    | [`Proc::all_gather`] / `…v`         | `O(τ log p + μp·m)`   |
//! | Transportation        | [`Proc::all_to_allv`]               | `O(τp + 2μt)`         |
//!
//! ## Virtual time
//!
//! Every processor carries a deterministic **virtual clock** (seconds, `f64`):
//!
//! * local computation advances it by `ops × t_op` via [`Proc::charge_ops`]
//!   — the selection kernels report their *measured* comparison/move counts,
//!   so constant factors are real, not estimated;
//! * a send advances the sender by `τ + μ·bytes`;
//! * a receive completes at `max(receiver_now, send_start + τ + μ·bytes)`
//!   and then pays a `μ·bytes` receiver-side copy (this is what makes the
//!   paper's transportation-primitive bound come out as `2μt`).
//!
//! Message matching is by `(source, tag)` with out-of-order stashing, and
//! collectives use epoch-scoped internal tags, so the virtual clock is
//! **bit-reproducible** regardless of host thread scheduling.
//!
//! ## Example
//!
//! ```
//! use cgselect_runtime::{Machine, MachineModel};
//!
//! let machine = Machine::with_model(4, MachineModel::cm5());
//! let sums = machine
//!     .run(|proc| {
//!         let mine = (proc.rank() + 1) as u64;
//!         proc.combine(mine, |a, b| a + b)
//!     })
//!     .unwrap();
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod collectives;
mod envelope;
pub mod fabric;
mod key;
mod machine;
mod model;
mod process;
mod session;
mod stats;
pub mod trace;
pub mod wiremsg;

pub use fabric::{FabricLink, FabricPoll, FabricRecvError, WireEnvelope};
pub use key::{Key, OrdF64};
pub use machine::{panic_message, Machine, RunError};
pub use model::{MachineModel, Topology};
pub use process::Proc;
pub use session::{Session, ShardStore};
pub use stats::{CommStats, PhaseTimer};
pub use trace::{
    aggregate_phases, render_phase_summary, render_timeline, PhaseAggregate, Trace, TraceEvent,
    TraceEventKind,
};
pub use wiremsg::{WireMsg, WireMsgError, WireReader};

/// Phase label used by the selection algorithms for the time they spend
/// redistributing data (needed to regenerate the paper's Figures 5 and 6).
pub const PHASE_LOAD_BALANCE: &str = "load_balance";
/// Phase label for time spent inside the parallel sample sort (Algorithm 4).
pub const PHASE_SORT: &str = "sort";
/// Phase label for the final gather-and-solve-sequentially step shared by all
/// selection algorithms.
pub const PHASE_FINISH: &str = "finish";
