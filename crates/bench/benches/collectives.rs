//! Real wall-clock microbenchmarks of the runtime's collectives
//! (the virtual-time figures use the cost model; these measure the actual
//! threaded implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cgselect_runtime::{Machine, MachineModel};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));

    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("broadcast_u64", p), &p, |b, &p| {
            let machine = Machine::with_model(p, MachineModel::free());
            b.iter(|| {
                machine
                    .run(|proc| {
                        let v = (proc.rank() == 0).then_some(42u64);
                        proc.broadcast(0, v)
                    })
                    .unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("combine_sum", p), &p, |b, &p| {
            let machine = Machine::with_model(p, MachineModel::free());
            b.iter(|| machine.run(|proc| proc.combine(proc.rank() as u64, |a, b| a + b)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("scan", p), &p, |b, &p| {
            let machine = Machine::with_model(p, MachineModel::free());
            b.iter(|| machine.run(|proc| proc.scan(1u64, |a, b| a + b)).unwrap());
        });
    }

    // Payload-bearing collectives at fixed p.
    let p = 4;
    for len in [1024usize, 16 * 1024] {
        g.throughput(Throughput::Bytes((len * 8) as u64));
        g.bench_with_input(BenchmarkId::new("gather_flat", len), &len, |b, &len| {
            let machine = Machine::with_model(p, MachineModel::free());
            b.iter(|| {
                machine
                    .run(|proc| {
                        let data = vec![proc.rank() as u64; len];
                        proc.gather_flat(0, data)
                    })
                    .unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("all_to_allv", len), &len, |b, &len| {
            let machine = Machine::with_model(p, MachineModel::free());
            b.iter(|| {
                machine
                    .run(|proc| {
                        let out: Vec<Vec<u64>> =
                            (0..proc.nprocs()).map(|_| vec![7u64; len / p]).collect();
                        proc.all_to_allv(out)
                    })
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
