//! Batched vs per-query execution on the persistent engine: the
//! amortization experiment motivating `cgselect-engine`.
//!
//! For batches of R rank/quantile queries over the same resident data, the
//! engine coalesces the whole batch into one `parallel_multi_select` pass;
//! this binary measures what that saves against issuing the R queries
//! one at a time — in collective rounds, virtual seconds (CM-5 model), and
//! host wall-clock — and writes `results/engine.{csv,txt}`.
//!
//! Round accounting comes from `cgselect_engine::measure_rounds`, the same
//! helper `tests/engine.rs` asserts on, so the numbers reported here are
//! by construction the numbers the test suite guarantees.
//!
//! Pass `--quick` for a reduced grid.

use std::time::Instant;

use cgselect_bench::chart::{markdown_table, write_csv, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_engine::{measure_rounds, Engine, EngineConfig, ExecutionMode, Query};
use cgselect_workloads::{generate, Distribution};

fn main() {
    let quick = quick_mode();
    let dir = results_dir();
    let p = 8;
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let batch_sizes: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64, 256] };

    let data: Vec<u64> = generate(Distribution::Random, n, p, 7).into_iter().flatten().collect();
    let mut engine: Engine<u64> = Engine::new(EngineConfig::new(p)).expect("engine start");
    engine.ingest(data).expect("ingest");
    let total = engine.len();

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &r in batch_sizes {
        let queries: Vec<Query> = (0..r)
            .map(|i| Query::Rank((i as u64 * (total - 1)) / r.max(2) as u64 + i as u64 % 3))
            .collect();

        let wall0 = Instant::now();
        let batched =
            measure_rounds(&mut engine, &queries, ExecutionMode::Batched).expect("batched execute");
        let batched_wall = wall0.elapsed().as_secs_f64();

        let wall0 = Instant::now();
        let single =
            measure_rounds(&mut engine, &queries, ExecutionMode::PerQuery).expect("single execute");
        let single_wall = wall0.elapsed().as_secs_f64();

        rows.push(format!(
            "{n},{p},{r},{},{},{:.6},{:.6},{},{},{:.6},{:.6}",
            batched.collective_ops,
            single.collective_ops,
            batched.makespan,
            single.makespan,
            batched.msgs_sent,
            single.msgs_sent,
            batched_wall,
            single_wall
        ));
        table.push(vec![
            r.to_string(),
            batched.collective_ops.to_string(),
            single.collective_ops.to_string(),
            format!("{:.1}x", single.collective_ops as f64 / batched.collective_ops as f64),
            format!("{:.2}", batched.rounds_per_query()),
            format!("{:.2}", single.rounds_per_query()),
            format!("{:.4}", batched.makespan),
            format!("{:.4}", single.makespan),
            format!("{:.1}x", single.makespan / batched.makespan.max(1e-12)),
        ]);
        println!(
            "R={r:>4}: collective ops {:>6} batched vs {:>7} single ({:.1}x, \
             {:.2} vs {:.2} rounds/query); virtual {:.4}s vs {:.4}s; wall {:.3}s vs {:.3}s",
            batched.collective_ops,
            single.collective_ops,
            single.collective_ops as f64 / batched.collective_ops as f64,
            batched.rounds_per_query(),
            single.rounds_per_query(),
            batched.makespan,
            single.makespan,
            batched_wall,
            single_wall
        );
    }

    let out = format!(
        "Batched vs per-query execution on the persistent engine\n\
         (n = {n}, p = {p}, random resident data; virtual times under the CM-5 model)\n\n{}\n\
         One multi-select pass resolves a whole batch in O(log n + R) pivot\n\
         rounds; R single-rank calls pay O(R log n). The ratio grows with R.\n",
        markdown_table(
            &[
                "R",
                "coll. ops (batch)",
                "coll. ops (single)",
                "ops ratio",
                "rounds/query (batch)",
                "rounds/query (single)",
                "virtual s (batch)",
                "virtual s (single)",
                "time ratio"
            ],
            &table
        )
    );
    write_csv(
        &dir.join("engine.csv"),
        "n,p,batch,collective_ops_batched,collective_ops_single,makespan_batched,\
         makespan_single,msgs_batched,msgs_single,wall_batched,wall_single",
        &rows,
    );
    write_text(&dir.join("engine.txt"), &out);
    print!("{out}");
    println!("engine -> {}/engine.{{csv,txt}}", dir.display());
}
