//! Shared-splitter bucket boundaries for distributed bucket indexes.
//!
//! The paper's bucket structure ([`crate::Buckets`]) is *local*: every
//! processor derives its own separators from its own data. A distributed
//! engine that wants a *global* per-bucket histogram needs the opposite —
//! one splitter vector agreed by all processors, against which each shard
//! partitions its local data so that "bucket `i`" means the same value
//! range everywhere (Nowicki's regular-sampling multiple selection works
//! this way).
//!
//! A splitter here is a [`SepBound`] — an upper boundary that is either
//! *inclusive* (`x ≤ v`) or *exclusive* (`x < v`). The exclusive flavour is
//! what lets a refinement isolate an exact equality class: inserting the
//! pair `(v, exclusive), (v, inclusive)` around a resolved answer `v`
//! carves the buckets `(…, v)`, `[v, v]`, `(v, …)` — and a bucket that is
//! a pure equality class can later be answered from counts alone, with no
//! element scan. Because both bounds mention only the shared value `v`,
//! every shard splits identically and the global histogram stays valid.

use crate::kernels::{partition_bound_kernel, partition_bound_reference, scalar_reference_mode};
use crate::ops::OpCount;

/// An upper bucket boundary: admits `x ≤ value` (inclusive) or `x < value`
/// (exclusive).
///
/// Bounds are totally ordered by `(value, inclusive)` with the exclusive
/// bound *first*, so a sorted bound vector `s₀ < s₁ < …` defines buckets
/// `B₀ = {x : s₀ admits x}`, `Bᵢ = {x : sᵢ admits x, sᵢ₋₁ does not}`, plus
/// a final bucket for everything no bound admits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SepBound<T> {
    /// The boundary value.
    pub value: T,
    /// `false`: the bucket below this bound excludes `value` itself.
    pub inclusive: bool,
}

impl<T: Copy + Ord> SepBound<T> {
    /// An inclusive boundary (`x ≤ value` falls below it).
    pub fn le(value: T) -> Self {
        SepBound { value, inclusive: true }
    }

    /// An exclusive boundary (`x < value` falls below it).
    pub fn lt(value: T) -> Self {
        SepBound { value, inclusive: false }
    }

    /// True if `x` belongs at or below this boundary.
    #[inline]
    pub fn admits(&self, x: &T) -> bool {
        if self.inclusive {
            *x <= self.value
        } else {
            *x < self.value
        }
    }
}

/// The index of the bucket `x` belongs to under sorted `bounds` (buckets
/// number `0 ..= bounds.len()`): the first bound admitting `x`, or
/// `bounds.len()` when none does. `O(log B)` comparisons, charged to `ops`.
pub fn bucket_of<T: Copy + Ord>(bounds: &[SepBound<T>], x: &T, ops: &mut OpCount) -> usize {
    let mut cmps = 0u64;
    let idx = bounds.partition_point(|b| {
        cmps += 1;
        !b.admits(x)
    });
    ops.cmps += cmps.max(1);
    idx
}

/// Number of comparisons [`bucket_of`] charges for one lookup among `len`
/// sorted bounds. The standard library's `partition_point` runs a
/// branchless size-halving bisection that probes exactly
/// `⌈log₂ len⌉ + 1` times regardless of where the target lands (replayed
/// here as the same size-halving loop), and `bucket_of` floors the charge
/// at 1. This lets a batch merge charge exactly what the per-probe binary
/// searches it replaces would have charged, without performing them. A
/// grid test pins it against the real [`bucket_of`] so any change to the
/// standard library's bisection schedule is caught immediately.
pub fn bucket_search_cmps(len: usize) -> u64 {
    let mut size = len;
    let mut cmps = 0u64;
    while size > 1 {
        size -= size / 2;
        cmps += 1;
    }
    if len > 0 {
        cmps += 1;
    }
    cmps.max(1)
}

/// Multiway in-place partition of `data` by strictly increasing `bounds`:
/// afterwards the elements of bucket `i` occupy `data[ret[i]..ret[i+1]]`.
///
/// Returns the bucket offsets — `bounds.len() + 2` entries, first `0`, last
/// `data.len()`, non-decreasing (empty buckets are allowed, unlike the
/// local [`crate::Buckets`] structure). Iterative halving over the bound
/// vector (an explicit worklist, safe for worker-thread stacks at any
/// bound-set size): `O(n log B)` measured comparisons. Each halving step
/// runs the branchless [`crate::partition_bound_kernel`] — or the scalar
/// reference walk under [`crate::set_scalar_reference_mode`] — both of
/// which charge identical measured costs.
///
/// # Panics
/// Panics (debug builds) if `bounds` is not strictly increasing.
pub fn partition_by_bounds<T: Copy + Ord>(
    data: &mut [T],
    bounds: &[SepBound<T>],
    ops: &mut OpCount,
) -> Vec<usize> {
    debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
    let mut offsets = vec![0usize; bounds.len() + 2];
    *offsets.last_mut().expect("non-empty") = data.len();
    let reference = scalar_reference_mode();
    // Worklist entries (dlo, dhi, blo, bhi): partition data[dlo..dhi] by
    // bounds[blo..bhi]. Children are pushed right-then-left so pops replay
    // the old recursion's depth-first order exactly.
    let mut work = vec![(0usize, data.len(), 0usize, bounds.len())];
    while let Some((dlo, dhi, blo, bhi)) = work.pop() {
        if blo == bhi {
            continue;
        }
        let mid = blo + (bhi - blo) / 2;
        let seg = &mut data[dlo..dhi];
        let cut = if reference {
            partition_bound_reference(seg, bounds[mid], ops)
        } else {
            partition_bound_kernel(seg, bounds[mid], ops)
        };
        // Everything in seg[..cut] falls at or below bounds[mid]; the
        // bucket starting after bounds[mid] therefore begins at dlo + cut.
        offsets[mid + 1] = dlo + cut;
        work.push((dlo + cut, dhi, mid + 1, bhi));
        work.push((dlo, dlo + cut, blo, mid));
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_bucket(bounds: &[SepBound<u64>], x: u64) -> usize {
        bounds.iter().position(|b| b.admits(&x)).unwrap_or(bounds.len())
    }

    #[test]
    fn bound_ordering_puts_exclusive_first() {
        assert!(SepBound::lt(5u64) < SepBound::le(5u64));
        assert!(SepBound::le(4u64) < SepBound::lt(5u64));
        assert!(!SepBound::lt(5u64).admits(&5));
        assert!(SepBound::le(5u64).admits(&5));
        assert!(SepBound::lt(5u64).admits(&4));
    }

    #[test]
    fn bucket_of_matches_linear_scan() {
        let bounds =
            vec![SepBound::le(10u64), SepBound::lt(20), SepBound::le(20), SepBound::le(35)];
        let mut ops = OpCount::new();
        for x in [0u64, 10, 11, 19, 20, 21, 35, 36, 1000] {
            assert_eq!(bucket_of(&bounds, &x, &mut ops), oracle_bucket(&bounds, x), "x={x}");
        }
        assert!(ops.cmps > 0);
    }

    #[test]
    fn eq_class_isolation_via_paired_bounds() {
        // (v, exclusive) + (v, inclusive) carve out the pure equality class.
        let bounds = vec![SepBound::lt(7u64), SepBound::le(7)];
        let mut data = vec![9u64, 7, 1, 7, 3, 7, 12, 0, 7];
        let mut ops = OpCount::new();
        let off = partition_by_bounds(&mut data, &bounds, &mut ops);
        assert_eq!(off, vec![0, 3, 7, 9]);
        assert!(data[off[0]..off[1]].iter().all(|&x| x < 7));
        assert_eq!(&data[off[1]..off[2]], &[7, 7, 7, 7]);
        assert!(data[off[2]..].iter().all(|&x| x > 7));
    }

    #[test]
    fn multiway_partition_matches_bucket_of() {
        let bounds: Vec<SepBound<u64>> =
            vec![SepBound::le(100), SepBound::le(250), SepBound::lt(600), SepBound::le(600)];
        let mut rng = crate::KernelRng::new(5);
        let mut data: Vec<u64> = (0..500).map(|_| rng.next_u64() % 800).collect();
        let orig = data.clone();
        let mut ops = OpCount::new();
        let off = partition_by_bounds(&mut data, &bounds, &mut ops);
        assert_eq!(off.len(), bounds.len() + 2);
        assert_eq!((off[0], *off.last().unwrap()), (0, data.len()));
        for b in 0..bounds.len() + 1 {
            for &x in &data[off[b]..off[b + 1]] {
                assert_eq!(oracle_bucket(&bounds, x), b, "x={x} in bucket {b}");
            }
        }
        // Multiset preserved.
        let (mut a, mut b) = (data, orig);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(ops.cmps > 0);
    }

    #[test]
    fn bucket_search_cmps_matches_bucket_of_charges() {
        // Pin the integer replay against the real binary search over every
        // (bound count, landing bucket) pair on a grid — if the standard
        // library ever changes its bisection schedule, this fails loudly.
        for len in 0..=33usize {
            let bounds: Vec<SepBound<u64>> =
                (0..len as u64).map(|i| SepBound::le(10 * i)).collect();
            for bucket in 0..=len {
                let x = if bucket == 0 { 0 } else { 10 * (bucket as u64 - 1) + 5 };
                let mut ops = OpCount::new();
                assert_eq!(bucket_of(&bounds, &x, &mut ops), bucket);
                assert_eq!(ops.cmps, bucket_search_cmps(len), "len={len} bucket={bucket}");
            }
        }
    }

    #[test]
    fn reference_and_kernel_partitions_agree() {
        let bounds: Vec<SepBound<u64>> =
            vec![SepBound::le(100), SepBound::lt(300), SepBound::le(300), SepBound::le(550)];
        let mut rng = crate::KernelRng::new(42);
        let data: Vec<u64> = (0..700).map(|_| rng.next_u64() % 800).collect();
        let mut kernel = data.clone();
        let mut reference = data;
        let mut ops_k = OpCount::new();
        let mut ops_r = OpCount::new();
        let off_k = partition_by_bounds(&mut kernel, &bounds, &mut ops_k);
        crate::set_scalar_reference_mode(true);
        let off_r = partition_by_bounds(&mut reference, &bounds, &mut ops_r);
        crate::set_scalar_reference_mode(false);
        assert_eq!(off_k, off_r);
        assert_eq!(kernel, reference, "same permutation either way");
        assert_eq!(ops_k, ops_r, "same measured charges either way");
    }

    #[test]
    fn degenerate_bound_chain_runs_iteratively() {
        // A strictly increasing bound per key value — the worklist must
        // handle arbitrarily large bound sets without deep native stacks.
        let n = 1usize << 14;
        let bounds: Vec<SepBound<u64>> = (0..n as u64).map(SepBound::le).collect();
        let mut data: Vec<u64> = (0..n as u64).rev().collect();
        let mut ops = OpCount::new();
        let off = partition_by_bounds(&mut data, &bounds, &mut ops);
        assert_eq!(off.len(), n + 2);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64);
            assert_eq!((off[i], off[i + 1]), (i, i + 1));
        }
    }

    #[test]
    fn empty_buckets_and_empty_inputs() {
        let bounds = vec![SepBound::le(5u64), SepBound::le(10), SepBound::le(20)];
        let mut data: Vec<u64> = vec![30, 31, 32];
        let mut ops = OpCount::new();
        let off = partition_by_bounds(&mut data, &bounds, &mut ops);
        assert_eq!(off, vec![0, 0, 0, 0, 3]); // everything past every bound
        let mut none: Vec<u64> = Vec::new();
        let off = partition_by_bounds(&mut none, &bounds, &mut ops);
        assert_eq!(off, vec![0, 0, 0, 0, 0]);
        let mut flat = vec![1u64, 2, 3];
        let off = partition_by_bounds(&mut flat, &[], &mut ops);
        assert_eq!(off, vec![0, 3]);
    }
}
